// The memory model (Section 4.2's caveat): peak element widths and the
// optimizer's memory budget gate.

#include <gtest/gtest.h>

#include "colop/ir/ir.h"
#include "colop/model/memory.h"
#include "colop/rules/optimizer.h"

namespace colop::model {
namespace {

using ir::Program;

TEST(Memory, ScalarProgramsPeakAtOneWord) {
  Program p;
  p.scan(ir::op_add()).reduce(ir::op_add()).bcast();
  EXPECT_EQ(peak_elem_words(p), 1);
}

TEST(Memory, TuplingRaisesThePeak) {
  Program pairs;
  pairs.map(ir::fn_pair()).scan(ir::op_add(), 2).map(ir::fn_proj1());
  EXPECT_EQ(peak_elem_words(pairs), 2);

  Program quads;
  quads.map(ir::fn_quadruple()).map(ir::fn_proj1());
  EXPECT_EQ(peak_elem_words(quads), 4);
}

TEST(Memory, RuleRewritesReportTheirFootprint) {
  Program lhs;
  lhs.scan(ir::op_add()).scan(ir::op_add());
  EXPECT_EQ(peak_elem_words(lhs), 1);
  const Program rhs = rules::rule_ss_scan()->match(lhs, 0)->apply(lhs);
  EXPECT_EQ(peak_elem_words(rhs), 4);  // quadruples
  const Program rhs2 = [&] {
    Program two;
    two.scan(ir::op_mul()).scan(ir::op_add());
    return rules::rule_ss2_scan()->match(two, 0)->apply(two);
  }();
  EXPECT_EQ(peak_elem_words(rhs2), 2);  // pairs
}

// Helper: any 3-word op.
ir::BinOpPtr triple_op() {
  static const ir::BinOpPtr op = ir::BinOp::make(
      {.name = "triple_op",
       .fn = [](const ir::Value& a, const ir::Value&) { return a; },
       .associative = true,
       .commutative = true,
       .ops_cost = 1});
  return op;
}

TEST(Memory, NonScalarInputCounts) {
  Program p;
  p.scan(triple_op(), 3);
  const auto triple = ir::Shape::replicate(ir::Shape::scalar(), 3);
  EXPECT_EQ(peak_elem_words(p, triple), 3);
}

TEST(OptimizerMemoryGate, BudgetBlocksQuadrupleRules) {
  // scan(+);scan(+): SS-Scan needs quadruples (4 words).  With a 2-word
  // budget the rule is inadmissible and the program stays unfused.
  Program prog;
  prog.scan(ir::op_add()).scan(ir::op_add());
  const model::Machine mach{.p = 64, .m = 4, .ts = 5000, .tw = 2};

  const auto unlimited = rules::Optimizer(mach).optimize(prog);
  ASSERT_FALSE(unlimited.log.empty());
  EXPECT_EQ(unlimited.log[0].rule, "SS-Scan");

  rules::OptimizerOptions tight;
  tight.max_elem_words = 2;
  const auto limited = rules::Optimizer(mach, rules::all_rules(), tight).optimize(prog);
  EXPECT_TRUE(limited.log.empty());
}

TEST(OptimizerMemoryGate, BudgetStillAllowsPairRules) {
  // scan(*);scan(+) -> SS2-Scan only needs pairs: fits a 2-word budget.
  Program prog;
  prog.scan(ir::op_mul()).scan(ir::op_add());
  const model::Machine mach{.p = 64, .m = 4, .ts = 5000, .tw = 2};
  rules::OptimizerOptions tight;
  tight.max_elem_words = 2;
  const auto res = rules::Optimizer(mach, rules::all_rules(), tight).optimize(prog);
  ASSERT_FALSE(res.log.empty());
  EXPECT_EQ(res.log[0].rule, "SS2-Scan");
}

TEST(OptimizerMemoryGate, WidthGeneralizedRulesRespectTheBudget) {
  // A 3-word operator: SS-Scan would need 12 words.
  auto op3 = ir::BinOp::make(
      {.name = "w3",
       .fn = [](const ir::Value& a, const ir::Value&) { return a; },
       .associative = true,
       .commutative = true,
       .ops_cost = 1});
  Program prog;
  prog.map({"embed3",
            [](const ir::Value& v) {
              return ir::Value(ir::Tuple{v, v, v});
            },
            0,
            [](const ir::Shape& s) { return ir::Shape::replicate(s, 3); }})
      .scan(op3, 3)
      .scan(op3, 3);
  const model::Machine mach{.p = 64, .m = 4, .ts = 9000, .tw = 2};
  rules::OptimizerOptions tight;
  tight.max_elem_words = 8;
  const auto res = rules::Optimizer(mach, rules::all_rules(), tight).optimize(prog);
  EXPECT_TRUE(res.log.empty());  // 12 > 8

  const auto loose = rules::Optimizer(mach).optimize(prog);
  EXPECT_FALSE(loose.log.empty());
}

}  // namespace
}  // namespace colop::model
