// Maximum segment sum: user-defined operator, map shape change, reference
// vs threads vs brute force.

#include <gtest/gtest.h>

#include "colop/apps/mss.h"
#include "colop/exec/thread_executor.h"
#include "colop/ir/ir.h"
#include "colop/support/rng.h"

namespace colop::apps {
namespace {

using ir::Dist;
using ir::Value;

TEST(Mss, OperatorIsAssociativeNotCommutative) {
  auto gen = [](Rng& rng) {
    // Valid mss tuples: build from a random element embedding, possibly
    // combined, to stay inside the operator's domain.
    const auto f = fn_mss_tuple();
    Value t = f(Value(rng.uniform(-9, 9)));
    if (rng.uniform(0, 1)) t = (*op_mss())(t, f(Value(rng.uniform(-9, 9))));
    return t;
  };
  EXPECT_TRUE(ir::check_associative(*op_mss(), gen, 300));
  EXPECT_FALSE(ir::check_commutative(*op_mss(), gen, 300));
}

TEST(Mss, ProgramShapeChecks) {
  EXPECT_FALSE(ir::check_shapes(mss_program()).has_value());
  EXPECT_EQ(mss_program().show(), "map(mss_tuple) ; reduce(op_mss) ; map(pi1)");
}

TEST(Mss, BruteforceBasics) {
  EXPECT_EQ(mss_bruteforce({}), 0);
  EXPECT_EQ(mss_bruteforce({-5}), 0);       // empty segment wins
  EXPECT_EQ(mss_bruteforce({5}), 5);
  EXPECT_EQ(mss_bruteforce({2, -1, 3}), 4);
  EXPECT_EQ(mss_bruteforce({-2, 1, -3, 4, -1, 2, 1, -5, 4}), 6);  // classic
}

class MssP : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(ProcessorCounts, MssP,
                         ::testing::Values(1, 2, 3, 5, 6, 8, 13, 16, 31),
                         [](const auto& pinfo) {
                           return "p" + std::to_string(pinfo.param);
                         });

TEST_P(MssP, MatchesBruteForcePerLane) {
  const int p = GetParam();
  constexpr int kLanes = 4;
  Rng rng(555);
  Dist in(static_cast<std::size_t>(p));
  std::vector<std::vector<std::int64_t>> lanes(kLanes);
  for (auto& block : in) {
    block.resize(kLanes);
    for (int l = 0; l < kLanes; ++l) {
      const auto x = rng.uniform(-10, 10);
      block[static_cast<std::size_t>(l)] = Value(x);
      lanes[static_cast<std::size_t>(l)].push_back(x);
    }
  }
  const Dist ref = mss_program().eval_reference(in);
  const Dist thr = exec::run_on_threads(mss_program(), in);
  for (int l = 0; l < kLanes; ++l) {
    const auto expect = mss_bruteforce(lanes[static_cast<std::size_t>(l)]);
    EXPECT_EQ(ref[0][static_cast<std::size_t>(l)].as_int(), expect) << "lane " << l;
    EXPECT_EQ(thr[0][static_cast<std::size_t>(l)].as_int(), expect) << "lane " << l;
  }
}

TEST_P(MssP, AllPositiveIsTotalAndAllNegativeIsZero) {
  const int p = GetParam();
  Dist pos(static_cast<std::size_t>(p)), neg(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    pos[static_cast<std::size_t>(r)] = {Value(r + 1)};
    neg[static_cast<std::size_t>(r)] = {Value(-(r + 1))};
  }
  EXPECT_EQ(mss_program().eval_reference(pos)[0][0].as_int(),
            static_cast<std::int64_t>(p) * (p + 1) / 2);
  EXPECT_EQ(mss_program().eval_reference(neg)[0][0].as_int(), 0);
}

}  // namespace
}  // namespace colop::apps
