// The critical-path profiler: the per-rank accounting must tile the
// makespan (busy + comm + idle == makespan on EVERY rank of every traced
// schedule), the critical path must be a gap-free chain covering
// [0, makespan], stage attribution must agree with the cost calculus on
// programs with a clear bottleneck, provenance must label rewritten
// stages, and the Chrome export must be valid JSON with flow arrows.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "colop/ir/parse.h"
#include "colop/obs/json.h"
#include "colop/obs/profile.h"
#include "colop/rules/optimizer.h"

namespace colop::obs {
namespace {

const model::Machine kMach{.p = 8, .m = 64, .ts = 400, .tw = 2};

const char* kPrograms[] = {
    "bcast",
    "scan(+)",
    "reduce(+)",
    "allreduce(+)",
    "bcast ; scan(+)",
    "scan(*) ; scan(+)",
    "map(pair) ; scan(+) ; reduce(*) ; bcast",
};

TEST(Profile, BusyCommIdleTileTheMakespanOnEveryTracedSchedule) {
  using B = exec::SimSchedules::Bcast;
  using R = exec::SimSchedules::Reduce;
  for (const B b : {B::butterfly, B::binomial, B::vdg, B::pipelined})
    for (const R r : {R::butterfly, R::binomial, R::vdg})
      for (const char* text : kPrograms)
        for (const int p : {2, 5, 8, 13}) {
          model::Machine mach = kMach;
          mach.p = p;
          ProfileOptions opts;
          opts.sched = {b, r};
          const auto prof =
              profile_program(ir::parse_program(text), mach, opts);
          EXPECT_TRUE(prof.balanced())
              << text << " p=" << p << " bcast=" << static_cast<int>(b)
              << " reduce=" << static_cast<int>(r) << "\n"
              << prof.render_text();
          EXPECT_TRUE(prof.path_complete())
              << text << " p=" << p << "\n" << prof.render_text();
        }
}

TEST(Profile, RankBreakdownSumsExactly) {
  const auto prof = profile_program(
      ir::parse_program("bcast ; scan(+) ; reduce(*)"), kMach);
  ASSERT_EQ(prof.ranks.size(), 8u);
  for (const auto& r : prof.ranks)
    EXPECT_NEAR(r.busy + r.comm + r.idle, prof.makespan,
                1e-9 * prof.makespan);
}

TEST(Profile, CriticalPathCoversZeroToMakespan) {
  const auto prof =
      profile_program(ir::parse_program("scan(*) ; scan(+)"), kMach);
  ASSERT_FALSE(prof.critical_path.empty());
  EXPECT_NEAR(prof.critical_path.front().start, 0, 1e-9);
  EXPECT_NEAR(prof.critical_path.back().end, prof.makespan,
              1e-9 * prof.makespan);
  double covered = 0;
  for (const auto& seg : prof.critical_path) covered += seg.duration();
  EXPECT_NEAR(covered, prof.makespan, 1e-9 * prof.makespan);
}

TEST(Profile, BottleneckAgreesWithTheCostModel) {
  // Programs whose stage costs differ sharply: the profiler's measured
  // bottleneck and the calculus' predicted one must be the same stage.
  for (const char* text :
       {"bcast ; scan(+)", "map(pair) ; scan(+)", "scan(+) ; reduce(*) ; bcast"}) {
    const auto prof = profile_program(ir::parse_program(text), kMach);
    const auto* measured = prof.bottleneck();
    const auto* predicted = prof.model_bottleneck();
    ASSERT_NE(measured, nullptr) << text;
    ASSERT_NE(predicted, nullptr) << text;
    EXPECT_EQ(measured->index, predicted->index)
        << text << "\n" << prof.render_text();
  }
}

TEST(Profile, EmptyProgramProfilesCleanly) {
  const auto prof = profile_program(ir::Program{}, kMach);
  EXPECT_EQ(prof.makespan, 0);
  EXPECT_TRUE(prof.balanced());
  EXPECT_TRUE(prof.path_complete());
  EXPECT_EQ(prof.bottleneck(), nullptr);
}

TEST(Provenance, ReplaysTheDerivationSplices) {
  // SS2-Scan on a high-startup machine: scan(*) ; scan(+) becomes
  // map(pair) ; scan(op_sr2) ; map(pi1), all three produced by the rule.
  const auto prog = ir::parse_program("scan(*) ; scan(+)");
  const rules::Optimizer opt(kMach);
  const auto result = opt.optimize(prog);
  ASSERT_FALSE(result.log.empty());
  const auto prov = rules::stage_provenance(prog.size(), result.log);
  ASSERT_EQ(prov.size(), result.program.size());
  for (const auto& rule : prov) EXPECT_EQ(rule, "SS2-Scan");
}

TEST(Provenance, SourceStagesKeepEmptyProvenance) {
  const auto prov = rules::stage_provenance(3, {});
  ASSERT_EQ(prov.size(), 3u);
  for (const auto& rule : prov) EXPECT_TRUE(rule.empty());
}

TEST(Provenance, UntouchedStagesSurviveAroundARewrite) {
  std::vector<rules::AppliedRule> log(1);
  log[0].rule = "R";
  log[0].position = 1;
  log[0].count = 2;
  log[0].replaced_by = 3;
  const auto prov = rules::stage_provenance(4, log);
  ASSERT_EQ(prov.size(), 5u);
  EXPECT_EQ(prov[0], "");
  EXPECT_EQ(prov[1], "R");
  EXPECT_EQ(prov[2], "R");
  EXPECT_EQ(prov[3], "R");
  EXPECT_EQ(prov[4], "");
}

TEST(Profile, ProvenanceLabelsReachTheStageTable) {
  const auto prog = ir::parse_program("scan(*) ; scan(+)");
  const rules::Optimizer opt(kMach);
  const auto result = opt.optimize(prog);
  ProfileOptions popts;
  popts.provenance = rules::stage_provenance(prog.size(), result.log);
  const auto prof = profile_program(result.program, kMach, popts);
  ASSERT_FALSE(prof.stages.empty());
  for (const auto& sp : prof.stages) EXPECT_EQ(sp.rule, "SS2-Scan");
  // The optimized scan carries (nearly) all of the critical path.
  EXPECT_EQ(prof.bottleneck()->label, "scan(op_sr2[*,+])");
}

TEST(Profile, ChromeTraceIsValidJsonWithNamedRanksAndFlows) {
  const auto prof =
      profile_program(ir::parse_program("bcast ; scan(+)"), kMach);
  std::ostringstream os;
  prof.write_chrome_trace(os);
  const auto doc = json::parse(os.str());
  const auto* events = doc.get("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw_rank0 = false, saw_flow_start = false, saw_flow_end = false;
  for (const auto& ev : events->items) {
    const auto* ph = ev->get("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str == "s") saw_flow_start = true;
    if (ph->str == "f") saw_flow_end = true;
    if (ph->str == "M") {
      if (const auto* args = ev->get("args"))
        if (const auto* name = args->get("name"))
          saw_rank0 |= name->str == "rank 0";
    }
  }
  EXPECT_TRUE(saw_rank0);
  EXPECT_TRUE(saw_flow_start);
  EXPECT_TRUE(saw_flow_end);
}

TEST(Profile, JsonExportParsesAndCarriesInvariants) {
  const auto prof =
      profile_program(ir::parse_program("scan(+) ; bcast"), kMach);
  std::ostringstream os;
  prof.write_json(os);
  const auto doc = json::parse(os.str());
  ASSERT_NE(doc.get("balanced"), nullptr);
  EXPECT_TRUE(doc.get("balanced")->b);
  EXPECT_TRUE(doc.get("path_complete")->b);
  EXPECT_EQ(doc.get("ranks")->items.size(), 8u);
  EXPECT_EQ(doc.get("stages")->items.size(), 2u);
}

}  // namespace
}  // namespace colop::obs
