// Topology models: hop counts, transfer times, and their effect on
// schedule makespans.

#include <gtest/gtest.h>

#include "colop/simnet/schedules.h"

namespace colop::simnet {
namespace {

TEST(Topology, FullyConnectedIsAlwaysOneHop) {
  for (int a = 0; a < 16; ++a)
    for (int b = 0; b < 16; ++b)
      EXPECT_EQ(topology_hops(Topology::fully_connected, 16, a, b),
                a == b ? 0 : 1);
}

TEST(Topology, HypercubeIsHammingDistance) {
  EXPECT_EQ(topology_hops(Topology::hypercube, 16, 0, 1), 1);
  EXPECT_EQ(topology_hops(Topology::hypercube, 16, 0, 3), 2);
  EXPECT_EQ(topology_hops(Topology::hypercube, 16, 5, 10), 4);  // 0101^1010
  EXPECT_EQ(topology_hops(Topology::hypercube, 16, 7, 7), 0);
  // Butterfly partners are always adjacent on the hypercube.
  for (int k = 0; k < 4; ++k)
    for (int r = 0; r < 16; ++r)
      EXPECT_EQ(topology_hops(Topology::hypercube, 16, r, r ^ (1 << k)), 1);
}

TEST(Topology, Mesh2dIsManhattanDistance) {
  // p = 16 -> 4x4 grid, row-major.
  EXPECT_EQ(topology_hops(Topology::mesh2d, 16, 0, 1), 1);    // same row
  EXPECT_EQ(topology_hops(Topology::mesh2d, 16, 0, 4), 1);    // same column
  EXPECT_EQ(topology_hops(Topology::mesh2d, 16, 0, 5), 2);    // diagonal
  EXPECT_EQ(topology_hops(Topology::mesh2d, 16, 0, 15), 6);   // corners
  EXPECT_EQ(topology_hops(Topology::mesh2d, 16, 3, 12), 6);
}

TEST(Topology, TransferTimeAddsPerHopLatency) {
  const NetParams net{100, 2, Topology::mesh2d, 50};
  SimMachine m(16, net);
  // 0 -> 1: one hop, no penalty.
  EXPECT_DOUBLE_EQ(m.transfer_time(0, 1, 10), 100 + 20);
  // 0 -> 15: six hops, five penalized.
  EXPECT_DOUBLE_EQ(m.transfer_time(0, 15, 10), 100 + 20 + 5 * 50);
}

TEST(Topology, DefaultParametersPreserveTheFullyConnectedModel) {
  const NetParams net{100, 2};
  SimMachine a(8, net);
  SimMachine b(8, NetParams{100, 2, Topology::hypercube, 0});
  bcast_butterfly(a, 10, 1);
  bcast_butterfly(b, 10, 1);
  EXPECT_DOUBLE_EQ(a.makespan(), b.makespan());
}

TEST(Topology, MeshSlowsButterflySchedules) {
  const NetParams full{100, 2, Topology::fully_connected, 400};
  const NetParams mesh{100, 2, Topology::mesh2d, 400};
  SimMachine a(64, full), b(64, mesh);
  scan_butterfly(a, 16, 1, 1);
  scan_butterfly(b, 16, 1, 1);
  EXPECT_GT(b.makespan(), a.makespan());
}

TEST(Topology, HypercubeIsFreeForButterflyButNotForBinomialLeaps) {
  // Butterfly phases are all 1-hop on the hypercube; the Bruck-style
  // dissemination barrier uses +2^k neighbours, which are multi-hop.
  const NetParams cube{100, 2, Topology::hypercube, 400};
  const NetParams full{100, 2, Topology::fully_connected, 400};
  {
    SimMachine a(32, cube), b(32, full);
    allreduce_butterfly(a, 8, 1, 1);
    allreduce_butterfly(b, 8, 1, 1);
    EXPECT_DOUBLE_EQ(a.makespan(), b.makespan());
  }
  {
    // rank 0 -> rank 3 (two hops on the cube) used by the binomial tree.
    SimMachine a(4, cube);
    a.send(0, 3, 1);
    EXPECT_DOUBLE_EQ(a.clock(0), 100 + 2 + 400);
  }
}

}  // namespace
}  // namespace colop::simnet
