// Differential engine: stage alignment statuses, suspect-stage ranking
// (the acceptance criterion: a deliberately perturbed stage must rank
// first), rule-decision diffing, drift extraction, and the stability and
// well-formedness of the JSON / HTML emissions.

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "colop/obs/json.h"
#include "colop/obs/run_diff.h"
#include "colop/obs/run_store.h"

namespace obs = colop::obs;

namespace {

obs::RunBundle base_bundle() {
  obs::RunBundle b;
  b.trace_id = "aaaaaaaaaaaaaaaa";
  b.git_sha = "sha_a";
  b.timestamp = "2026-08-08 10:00:00";
  b.timestamp_ns = 1;
  b.machine = {8, 64, 400, 2};
  b.program_before = "scan(+) ; reduce(+) ; bcast";
  b.program_after = "scan(+) ; allreduce(+)";
  b.stages_after = {{0, "scan(+)", "scan", false, "", 100.0},
                    {1, "allreduce(+)", "allreduce", false, "RB-Allreduce",
                     80.0}};
  b.rules = {{"RB-Allreduce", 1, 2, 1, "+=+", 250.0, 180.0,
              "scan(+) ; allreduce(+)"}};
  b.model_cost_before = 250;
  b.model_cost_after = 180;
  b.sim_before = {250, 40, 1000};
  b.sim_after = {180, 30, 800};
  return b;
}

TEST(RunDiff, IdenticalRunsDiffToAllSame) {
  obs::RunBundle b = base_bundle();
  b.trace_id = "bbbbbbbbbbbbbbbb";
  const obs::RunDiff d = obs::diff_runs(base_bundle(), b);

  EXPECT_FALSE(d.machine_changed());
  ASSERT_EQ(d.stages.size(), 2u);
  EXPECT_EQ(d.stages[0].status, "same");
  EXPECT_EQ(d.stages[1].status, "same");
  EXPECT_TRUE(d.suspects.empty());
  EXPECT_TRUE(d.rules_only_a.empty());
  EXPECT_TRUE(d.rules_only_b.empty());
  ASSERT_EQ(d.rules_common.size(), 1u);
  EXPECT_EQ(d.rules_common[0], "RB-Allreduce@1 {+=+}");
  EXPECT_EQ(d.a.trace_id, "aaaaaaaaaaaaaaaa");
  EXPECT_EQ(d.b.trace_id, "bbbbbbbbbbbbbbbb");
}

// The acceptance criterion: perturb ONE stage's cost and that stage must
// be ranked first among the suspects.
TEST(RunDiff, PerturbedStageRanksFirstSuspect) {
  const obs::RunBundle a = base_bundle();
  obs::RunBundle b = base_bundle();
  b.trace_id = "bbbbbbbbbbbbbbbb";
  b.stages_after[1].model_time = 300.0;  // allreduce(+) regresses by 220
  b.stages_after[0].model_time = 110.0;  // scan(+) regresses by only 10
  b.model_cost_after = 410;

  const obs::RunDiff d = obs::diff_runs(a, b);
  ASSERT_EQ(d.stages.size(), 2u);
  EXPECT_EQ(d.stages[0].status, "changed");
  EXPECT_EQ(d.stages[1].status, "changed");
  ASSERT_EQ(d.suspects.size(), 2u);
  EXPECT_EQ(d.stages[d.suspects[0].stage].label, "allreduce(+)");
  EXPECT_DOUBLE_EQ(d.suspects[0].delta, 220.0);
  EXPECT_NEAR(d.suspects[0].share, 220.0 / 230.0, 1e-12);
  EXPECT_EQ(d.stages[d.suspects[1].stage].label, "scan(+)");

  // The ranking must survive the JSON round trip.
  std::ostringstream os;
  d.write_json(os);
  const auto doc = obs::json::parse(os.str());
  const auto* suspects = doc.get("suspects");
  ASSERT_TRUE(suspects != nullptr);
  ASSERT_EQ(suspects->items.size(), 2u);
  EXPECT_EQ(suspects->items[0]->get("label")->str, "allreduce(+)");
  EXPECT_EQ(suspects->items[0]->get("rank")->num, 1);
}

TEST(RunDiff, AddedAndRemovedStages) {
  const obs::RunBundle a = base_bundle();
  obs::RunBundle b = base_bundle();
  b.trace_id = "bbbbbbbbbbbbbbbb";
  // B took a different derivation: no fusion, three stages survive.
  b.program_after = "scan(+) ; reduce(+) ; bcast";
  b.stages_after = {{0, "scan(+)", "scan", false, "", 100.0},
                    {1, "reduce(+)", "reduce", false, "", 90.0},
                    {2, "bcast", "bcast", false, "", 60.0}};
  b.rules.clear();
  b.model_cost_after = 250;

  const obs::RunDiff d = obs::diff_runs(a, b);
  ASSERT_EQ(d.stages.size(), 4u);
  EXPECT_EQ(d.stages[0].status, "same");      // scan(+) in both
  EXPECT_EQ(d.stages[0].label, "scan(+)");
  EXPECT_EQ(d.stages[1].status, "removed");   // allreduce(+) gone in B
  EXPECT_EQ(d.stages[1].label, "allreduce(+)");
  EXPECT_EQ(d.stages[2].status, "added");     // reduce(+) new in B
  EXPECT_EQ(d.stages[3].status, "added");     // bcast new in B

  // Added stages contribute their full time to the regression.
  ASSERT_GE(d.suspects.size(), 2u);
  EXPECT_EQ(d.stages[d.suspects[0].stage].label, "reduce(+)");
  EXPECT_DOUBLE_EQ(d.suspects[0].delta, 90.0);

  // The rule applied only in A shows up as A-only.
  ASSERT_EQ(d.rules_only_a.size(), 1u);
  EXPECT_EQ(d.rules_only_a[0], "RB-Allreduce@1 {+=+}");
  EXPECT_TRUE(d.rules_only_b.empty());
  EXPECT_TRUE(d.rules_common.empty());
}

TEST(RunDiff, MachineAndProvenanceChanges) {
  const obs::RunBundle a = base_bundle();
  obs::RunBundle b = base_bundle();
  b.trace_id = "bbbbbbbbbbbbbbbb";
  b.machine = {64, 1024, 400, 2};
  b.stages_after[1].rule = "RB-Other";  // same label+cost, new provenance

  const obs::RunDiff d = obs::diff_runs(a, b);
  EXPECT_TRUE(d.machine_changed());
  EXPECT_EQ(d.machine_a.p, 8);
  EXPECT_EQ(d.machine_b.p, 64);
  // Provenance change alone flips the status to "changed".
  EXPECT_EQ(d.stages[1].status, "changed");
  EXPECT_TRUE(d.suspects.empty());  // no cost moved
}

TEST(RunDiff, DriftArtifactExtraction) {
  const std::string drift_json =
      "{\"original\":{\"rows\":[{\"time_rel_err\":0.01}]},"
      "\"optimized\":{\"rows\":[{\"time_rel_err\":-0.02},"
      "{\"time_rel_err\":0.005}]}}";
  obs::RunBundle a = base_bundle();
  a.artifacts["drift"] = drift_json;
  obs::RunBundle b = base_bundle();
  b.trace_id = "bbbbbbbbbbbbbbbb";
  b.artifacts["drift"] =
      "{\"optimized\":{\"rows\":[{\"time_rel_err\":0.5}]}}";

  const obs::RunDiff d = obs::diff_runs(a, b);
  ASSERT_TRUE(d.drift_present);
  EXPECT_DOUBLE_EQ(d.drift_max_rel_err_a, 0.02);  // max |rel err|
  EXPECT_DOUBLE_EQ(d.drift_max_rel_err_b, 0.5);

  // One side missing the artifact -> no drift section, no throw.
  obs::RunBundle c = base_bundle();
  c.trace_id = "cccccccccccccccc";
  EXPECT_FALSE(obs::diff_runs(a, c).drift_present);
  // Malformed drift JSON is skipped, not fatal.
  c.artifacts["drift"] = "garbage";
  EXPECT_FALSE(obs::diff_runs(a, c).drift_present);
}

TEST(RunDiff, JsonIsStableAndSchemaShaped) {
  const obs::RunBundle a = base_bundle();
  obs::RunBundle b = base_bundle();
  b.trace_id = "bbbbbbbbbbbbbbbb";
  b.machine.p = 64;
  b.stages_after[0].model_time = 120;

  const obs::RunDiff d = obs::diff_runs(a, b);
  std::ostringstream os1, os2;
  d.write_json(os1);
  obs::diff_runs(a, b).write_json(os2);
  EXPECT_EQ(os1.str(), os2.str());  // byte-stable for fixed inputs

  const auto doc = obs::json::parse(os1.str());
  EXPECT_EQ(doc.get("kind")->str, "colop_run_diff");
  EXPECT_EQ(doc.get("schema_version")->num, obs::RunDiff::kSchemaVersion);
  EXPECT_EQ(doc.get("runs")->get("a")->get("trace_id")->str,
            "aaaaaaaaaaaaaaaa");
  EXPECT_EQ(doc.get("runs")->get("b")->get("trace_id")->str,
            "bbbbbbbbbbbbbbbb");
  EXPECT_TRUE(doc.get("machine")->get("changed")->b);
  ASSERT_TRUE(doc.get("totals")->get("model_cost") != nullptr);
  ASSERT_TRUE(doc.get("stages") != nullptr);
  ASSERT_TRUE(doc.get("rules")->get("common") != nullptr);
  ASSERT_TRUE(doc.get("drift") != nullptr);
  // The diff describes the two archived runs only — the manifests' argv
  // (which may embed temp paths) must NOT leak into the diff document.
  EXPECT_TRUE(doc.get("args") == nullptr);
}

TEST(RunDiff, HtmlIsSelfContained) {
  const obs::RunBundle a = base_bundle();
  obs::RunBundle b = base_bundle();
  b.trace_id = "bbbbbbbbbbbbbbbb";
  b.stages_after[1].model_time = 300;
  b.program_after = "scan(+) ; allreduce(<&>)";  // HTML-hostile label

  const obs::RunDiff d = obs::diff_runs(a, b);
  std::ostringstream os;
  d.write_html(os);
  const std::string html = os.str();
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("</html>"), std::string::npos);
  EXPECT_NE(html.find("aaaaaaaaaaaaaaaa"), std::string::npos);
  EXPECT_NE(html.find("bbbbbbbbbbbbbbbb"), std::string::npos);
  EXPECT_NE(html.find("suspect stages"), std::string::npos);
  EXPECT_NE(html.find("&lt;&amp;&gt;"), std::string::npos);  // escaped
  // Self-contained: no external assets, no scripts.
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
}

TEST(RunDiff, TextReportNamesSuspectAndRule) {
  const obs::RunBundle a = base_bundle();
  obs::RunBundle b = base_bundle();
  b.trace_id = "bbbbbbbbbbbbbbbb";
  b.stages_after[1].model_time = 300;

  const std::string text = obs::diff_runs(a, b).render_text();
  EXPECT_NE(text.find("suspect stages"), std::string::npos);
  EXPECT_NE(text.find("#1 allreduce(+) [RB-Allreduce]"), std::string::npos)
      << text;
  EXPECT_NE(text.find("machine   : unchanged"), std::string::npos);
}

}  // namespace
