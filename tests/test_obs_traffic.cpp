// Traffic counter accuracy: the mpsim collectives must account exactly
// the message counts their log-p schedules imply (binomial trees send
// p-1 messages, the butterfly sends p*log2(p) at powers of two), the
// rank-sharded TrafficStats must lose no increment under concurrency,
// and the obs event stream must mirror the same sends.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "colop/mpsim/mpsim.h"
#include "colop/obs/sink.h"

namespace colop::mpsim {
namespace {

using i64 = std::int64_t;

std::uint64_t u(int x) { return static_cast<std::uint64_t>(x); }

int log2_floor(int p) {
  int k = 0;
  while ((2 << k) <= p) ++k;
  return k;
}

bool is_pow2(int p) { return (p & (p - 1)) == 0; }

// Butterfly allreduce: fold the p-q extra ranks in and out (one send
// each way per pair), butterfly over q = 2^floor(log2 p) in between.
std::uint64_t allreduce_messages(int p) {
  if (p == 1) return 0;
  const int q = 1 << log2_floor(p);
  const int rem = p - q;
  return u(2 * rem + q * log2_floor(q));
}

class TrafficP : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(ProcessorCounts, TrafficP,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 12, 16, 32,
                                           64),
                         [](const auto& pinfo) {
                           return "p" + std::to_string(pinfo.param);
                         });

TEST_P(TrafficP, BcastBinomialSendsPMinusOneMessages) {
  const int p = GetParam();
  const auto traffic = run_spmd_traffic(p, [](Comm& comm) {
    (void)bcast(comm, comm.rank() == 0 ? i64{7} : i64{0});
  });
  EXPECT_EQ(traffic.messages, u(p - 1));
  EXPECT_GT(traffic.bytes, 0u);
}

TEST_P(TrafficP, ReduceBinomialSendsPMinusOneMessages) {
  const int p = GetParam();
  const auto plus = [](i64 a, i64 b) { return a + b; };
  const auto traffic = run_spmd_traffic(p, [&](Comm& comm) {
    (void)reduce(comm, i64{comm.rank() + 1}, plus);
  });
  EXPECT_EQ(traffic.messages, u(p - 1));
}

TEST_P(TrafficP, AllreduceButterflyMatchesTheClosedForm) {
  const int p = GetParam();
  const auto plus = [](i64 a, i64 b) { return a + b; };
  const auto traffic = run_spmd_traffic(p, [&](Comm& comm) {
    (void)allreduce(comm, i64{comm.rank()}, plus);
  });
  EXPECT_EQ(traffic.messages, allreduce_messages(p));
  if (is_pow2(p)) {
    EXPECT_EQ(traffic.messages, u(p * log2_floor(p)));
  }
}

TEST_P(TrafficP, ScanButterflyIsPLogPAtPowersOfTwo) {
  const int p = GetParam();
  if (!is_pow2(p)) GTEST_SKIP() << "closed form asserted at powers of two";
  const auto plus = [](i64 a, i64 b) { return a + b; };
  const auto traffic = run_spmd_traffic(p, [&](Comm& comm) {
    (void)scan(comm, i64{comm.rank() + 1}, plus);
  });
  EXPECT_EQ(traffic.messages, u(p * log2_floor(p)));
}

TEST_P(TrafficP, PerRankSnapshotsSumToTheAggregate) {
  const int p = GetParam();
  const auto plus = [](i64 a, i64 b) { return a + b; };
  auto group = std::make_shared<Group>(p);
  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r)
      threads.emplace_back([&, r] {
        Comm comm(group, r);
        (void)allreduce(comm, i64{r}, plus);
        (void)scan(comm, i64{r}, plus);
      });
  }
  TrafficCounters sum;
  for (int r = 0; r < p; ++r) sum = sum + group->stats().snapshot(r);
  EXPECT_EQ(sum, group->stats().snapshot());
  EXPECT_GT(sum.messages, 0u);
}

TEST(TrafficStats, ConcurrentCollectivesLoseNoCounts) {
  // Repeated allreduces keep all ranks incrementing simultaneously; a
  // racy counter would come up short of the exact total.
  const int p = 8;
  const int iters = 50;
  const auto plus = [](i64 a, i64 b) { return a + b; };
  const auto traffic = run_spmd_traffic(p, [&](Comm& comm) {
    i64 acc = comm.rank() + 1;
    for (int i = 0; i < iters; ++i) acc = allreduce(comm, acc, plus);
  });
  EXPECT_EQ(traffic.messages, u(iters) * allreduce_messages(p));
}

TEST(TrafficStats, ShardedCountersAreExactUnderContention) {
  TrafficStats stats(4);
  const int per_thread = 20000;
  {
    std::vector<std::jthread> threads;
    for (int r = 0; r < 4; ++r)
      threads.emplace_back([&, r] {
        for (int i = 0; i < per_thread; ++i) stats.record_send(r, 8);
      });
  }
  EXPECT_EQ(stats.snapshot().messages, u(4 * per_thread));
  EXPECT_EQ(stats.snapshot().bytes, u(4 * per_thread) * 8u);
  TrafficCounters sum;
  for (int r = 0; r < stats.ranks(); ++r) sum = sum + stats.snapshot(r);
  EXPECT_EQ(sum, stats.snapshot());
  stats.reset();
  EXPECT_EQ(stats.snapshot(), TrafficCounters{});
}

TEST(TrafficStats, OutOfRangeRanksFallBackToShardZero) {
  TrafficStats stats(2);
  stats.record_send(-1, 4);
  stats.record_send(99, 4);
  EXPECT_EQ(stats.snapshot().messages, 2u);
  EXPECT_EQ(stats.snapshot(0).messages, 2u);
  EXPECT_EQ(stats.snapshot(1).messages, 0u);
}

TEST(ObsMpsim, CollectivesEmitSpansAndSendInstants) {
  obs::MemorySink sink;
  {
    obs::ScopedSink s(sink);
    run_spmd(4, [](Comm& comm) {
      (void)bcast(comm, comm.rank() == 0 ? i64{5} : i64{0});
    });
  }
  int begins = 0, ends = 0, sends = 0;
  for (const auto& e : sink.events()) {
    if (e.name == "mpsim.bcast" && e.phase == obs::Phase::begin) ++begins;
    if (e.name == "mpsim.bcast" && e.phase == obs::Phase::end) ++ends;
    if (e.name == "send" && e.phase == obs::Phase::instant) {
      ++sends;
      EXPECT_EQ(e.cat, "mpsim");
      EXPECT_GT(e.value, 0.0);  // payload bytes travel in `value`
    }
  }
  EXPECT_EQ(begins, 4);
  EXPECT_EQ(ends, 4);
  EXPECT_EQ(sends, 3);  // binomial tree: p-1 messages
}

}  // namespace
}  // namespace colop::mpsim
