// Exclusive scan and reduce-scatter.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "colop/mpsim/mpsim.h"
#include "colop/support/rng.h"

namespace colop::mpsim {
namespace {

using i64 = std::int64_t;

class ExscanP : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(ProcessorCounts, ExscanP,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 11, 16, 23, 32),
                         [](const auto& pinfo) {
                           return "p" + std::to_string(pinfo.param);
                         });

TEST_P(ExscanP, ExscanSumMatchesPrefixOfPredecessors) {
  const int p = GetParam();
  Rng rng(61);
  std::vector<i64> xs(static_cast<std::size_t>(p));
  for (auto& x : xs) x = rng.uniform(-40, 40);
  auto out = run_spmd_collect<std::optional<i64>>(p, [&](Comm& comm) {
    return exscan(comm, xs[static_cast<std::size_t>(comm.rank())],
                  [](i64 a, i64 b) { return a + b; });
  });
  EXPECT_FALSE(out[0].has_value());  // rank 0 is undefined (MPI semantics)
  i64 acc = 0;
  for (int r = 1; r < p; ++r) {
    acc += xs[static_cast<std::size_t>(r - 1)];
    ASSERT_TRUE(out[static_cast<std::size_t>(r)].has_value()) << "rank " << r;
    EXPECT_EQ(*out[static_cast<std::size_t>(r)], acc) << "rank " << r;
  }
}

TEST_P(ExscanP, ExscanNonCommutativeStringConcat) {
  const int p = GetParam();
  auto out = run_spmd_collect<std::optional<std::string>>(p, [](Comm& comm) {
    return exscan(comm, std::string(1, static_cast<char>('a' + comm.rank() % 26)),
                  [](std::string a, const std::string& b) { return std::move(a) += b; });
  });
  std::string acc;
  for (int r = 1; r < p; ++r) {
    acc += static_cast<char>('a' + (r - 1) % 26);
    EXPECT_EQ(out[static_cast<std::size_t>(r)].value(), acc) << "rank " << r;
  }
}

TEST_P(ExscanP, ExscanConsistentWithInclusiveScan) {
  const int p = GetParam();
  Rng rng(62);
  std::vector<i64> xs(static_cast<std::size_t>(p));
  for (auto& x : xs) x = rng.uniform(-9, 9);
  const auto plus = [](i64 a, i64 b) { return a + b; };
  auto pairs = run_spmd_collect<std::pair<std::optional<i64>, i64>>(
      p, [&](Comm& comm) {
        const i64 x = xs[static_cast<std::size_t>(comm.rank())];
        auto ex = exscan(comm, x, plus);
        auto in = scan(comm, x, plus);
        return std::make_pair(ex, in);
      });
  for (int r = 0; r < p; ++r) {
    const auto& [ex, in] = pairs[static_cast<std::size_t>(r)];
    const i64 x = xs[static_cast<std::size_t>(r)];
    EXPECT_EQ(ex.value_or(0) + x, in) << "rank " << r;  // in = ex # x
  }
}

class ReduceScatterP : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(ProcessorCounts, ReduceScatterP,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 12, 16, 32),
                         [](const auto& pinfo) {
                           return "p" + std::to_string(pinfo.param);
                         });

TEST_P(ReduceScatterP, SumsBlocksPerDestination) {
  const int p = GetParam();
  auto out = run_spmd_collect<i64>(p, [&](Comm& comm) {
    std::vector<i64> blocks;
    for (int j = 0; j < p; ++j) blocks.push_back(comm.rank() * 100 + j);
    return reduce_scatter(comm, std::move(blocks), [](i64 a, i64 b) { return a + b; });
  });
  for (int i = 0; i < p; ++i) {
    i64 expect = 0;
    for (int r = 0; r < p; ++r) expect += r * 100 + i;
    EXPECT_EQ(out[static_cast<std::size_t>(i)], expect) << "rank " << i;
  }
}

TEST_P(ReduceScatterP, NonCommutativeConcatStaysInRankOrder) {
  const int p = GetParam();
  auto out = run_spmd_collect<std::string>(p, [&](Comm& comm) {
    std::vector<std::string> blocks;
    for (int j = 0; j < p; ++j)
      blocks.push_back(std::string(1, static_cast<char>('a' + comm.rank() % 26)));
    return reduce_scatter(
        comm, std::move(blocks),
        [](std::string a, const std::string& b) { return std::move(a) += b; },
        /*commutative=*/false);
  });
  std::string expect;
  for (int r = 0; r < p; ++r) expect += static_cast<char>('a' + r % 26);
  for (int i = 0; i < p; ++i)
    EXPECT_EQ(out[static_cast<std::size_t>(i)], expect) << "rank " << i;
}

TEST(ReduceScatterErrors, NeedsPBlocks) {
  EXPECT_THROW(run_spmd(4,
                        [](Comm& comm) {
                          std::vector<int> blocks(2);
                          (void)reduce_scatter(comm, std::move(blocks),
                                               [](int a, int b) { return a + b; });
                        }),
               Error);
}

}  // namespace
}  // namespace colop::mpsim
