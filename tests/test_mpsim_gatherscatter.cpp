// Scatter / gather / allgather / alltoall / dissemination barrier.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "colop/mpsim/mpsim.h"

namespace colop::mpsim {
namespace {

using i64 = std::int64_t;

class GatherScatterP : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(ProcessorCounts, GatherScatterP,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 21, 32),
                         [](const auto& pinfo) {
                           return "p" + std::to_string(pinfo.param);
                         });

TEST_P(GatherScatterP, ScatterDeliversBlockI) {
  const int p = GetParam();
  auto out = run_spmd_collect<i64>(p, [&](Comm& comm) {
    std::vector<i64> blocks;
    if (comm.rank() == 0)
      for (int i = 0; i < p; ++i) blocks.push_back(100 + i);
    return scatter(comm, std::move(blocks));
  });
  for (int r = 0; r < p; ++r) EXPECT_EQ(out[static_cast<std::size_t>(r)], 100 + r) << "rank " << r;
}

TEST_P(GatherScatterP, ScatterFromNonzeroRoot) {
  const int p = GetParam();
  const int root = p / 2;
  auto out = run_spmd_collect<i64>(p, [&](Comm& comm) {
    std::vector<i64> blocks;
    if (comm.rank() == root)
      for (int i = 0; i < p; ++i) blocks.push_back(7 * i);
    return scatter(comm, std::move(blocks), root);
  });
  for (int r = 0; r < p; ++r) EXPECT_EQ(out[static_cast<std::size_t>(r)], 7 * r) << "rank " << r;
}

TEST_P(GatherScatterP, GatherCollectsInRankOrder) {
  const int p = GetParam();
  auto out = run_spmd_collect<std::vector<i64>>(p, [](Comm& comm) {
    return gather(comm, static_cast<i64>(comm.rank() * comm.rank()));
  });
  ASSERT_EQ(out[0].size(), static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) EXPECT_EQ(out[0][static_cast<std::size_t>(r)], static_cast<i64>(r) * r);
  for (int r = 1; r < p; ++r) EXPECT_TRUE(out[static_cast<std::size_t>(r)].empty());
}

TEST_P(GatherScatterP, GatherToNonzeroRoot) {
  const int p = GetParam();
  const int root = p - 1;
  auto out = run_spmd_collect<std::vector<i64>>(p, [&](Comm& comm) {
    return gather(comm, static_cast<i64>(comm.rank() + 1), root);
  });
  ASSERT_EQ(out[static_cast<std::size_t>(root)].size(), static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r)
    EXPECT_EQ(out[static_cast<std::size_t>(root)][static_cast<std::size_t>(r)], r + 1);
}

TEST_P(GatherScatterP, ScatterThenGatherRoundtrips) {
  const int p = GetParam();
  auto out = run_spmd_collect<std::vector<i64>>(p, [&](Comm& comm) {
    std::vector<i64> blocks;
    if (comm.rank() == 0)
      for (int i = 0; i < p; ++i) blocks.push_back(i * i - 3);
    const i64 mine = scatter(comm, std::move(blocks));
    return gather(comm, mine);
  });
  for (int i = 0; i < p; ++i) EXPECT_EQ(out[0][static_cast<std::size_t>(i)], static_cast<i64>(i) * i - 3);
}

TEST_P(GatherScatterP, AllgatherGivesEveryoneEverything) {
  const int p = GetParam();
  auto out = run_spmd_collect<std::vector<std::string>>(p, [](Comm& comm) {
    return allgather(comm, "r" + std::to_string(comm.rank()));
  });
  for (int r = 0; r < p; ++r) {
    ASSERT_EQ(out[static_cast<std::size_t>(r)].size(), static_cast<std::size_t>(p)) << "rank " << r;
    for (int i = 0; i < p; ++i)
      EXPECT_EQ(out[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)], "r" + std::to_string(i));
  }
}

TEST_P(GatherScatterP, AlltoallTransposes) {
  const int p = GetParam();
  auto out = run_spmd_collect<std::vector<i64>>(p, [&](Comm& comm) {
    std::vector<i64> blocks;
    for (int j = 0; j < p; ++j) blocks.push_back(comm.rank() * 1000 + j);
    return alltoall(comm, std::move(blocks));
  });
  // Rank i's slot j must hold what rank j addressed to rank i.
  for (int i = 0; i < p; ++i)
    for (int j = 0; j < p; ++j)
      EXPECT_EQ(out[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], j * 1000 + i);
}

TEST_P(GatherScatterP, DisseminationBarrierCompletes) {
  const int p = GetParam();
  run_spmd(p, [](Comm& comm) {
    for (int i = 0; i < 3; ++i) barrier_dissemination(comm);
  });
}

TEST(GatherScatterErrors, ScatterRootNeedsPBlocks) {
  EXPECT_THROW(run_spmd(3,
                        [](Comm& comm) {
                          std::vector<int> blocks(2);  // wrong: needs 3
                          (void)scatter(comm, std::move(blocks));
                        }),
               Error);
}

TEST(GatherScatterErrors, AlltoallNeedsPBlocks) {
  EXPECT_THROW(run_spmd(3,
                        [](Comm& comm) {
                          std::vector<int> blocks(1);
                          (void)alltoall(comm, std::move(blocks));
                        }),
               Error);
}

}  // namespace
}  // namespace colop::mpsim
