// Point-to-point, barrier, abort and split semantics of the mpsim runtime.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <vector>

#include "colop/mpsim/mpsim.h"
#include "colop/support/error.h"

namespace colop::mpsim {
namespace {

TEST(Spmd, SingleRankRuns) {
  int visits = 0;
  run_spmd(1, [&](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    ++visits;
  });
  EXPECT_EQ(visits, 1);
}

TEST(Spmd, CollectReturnsRankIndexedResults) {
  auto out = run_spmd_collect<int>(7, [](Comm& comm) { return comm.rank() * 10; });
  ASSERT_EQ(out.size(), 7u);
  for (int r = 0; r < 7; ++r) EXPECT_EQ(out[static_cast<std::size_t>(r)], r * 10);
}

TEST(P2p, SendRecvRoundtrip) {
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, std::string("hello"), 5);
      EXPECT_EQ(comm.recv<int>(1, 6), 99);
    } else {
      EXPECT_EQ(comm.recv<std::string>(0, 5), "hello");
      comm.send(0, 99, 6);
    }
  });
}

TEST(P2p, FifoOrderPerSourceAndTag) {
  run_spmd(2, [](Comm& comm) {
    constexpr int kN = 200;
    if (comm.rank() == 0) {
      for (int i = 0; i < kN; ++i) comm.send(1, i);
    } else {
      for (int i = 0; i < kN; ++i) EXPECT_EQ(comm.recv<int>(0), i);
    }
  });
}

TEST(P2p, TagsDoNotCross) {
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 111, 1);
      comm.send(1, 222, 2);
    } else {
      // Receive in the opposite order of sending: matching is by tag.
      EXPECT_EQ(comm.recv<int>(0, 2), 222);
      EXPECT_EQ(comm.recv<int>(0, 1), 111);
    }
  });
}

TEST(P2p, SendRecvExchangesSimultaneously) {
  auto out = run_spmd_collect<int>(2, [](Comm& comm) {
    return comm.sendrecv(1 - comm.rank(), comm.rank() + 40);
  });
  EXPECT_EQ(out[0], 41);
  EXPECT_EQ(out[1], 40);
}

TEST(P2p, TypeMismatchThrows) {
  EXPECT_THROW(run_spmd(2,
                        [](Comm& comm) {
                          if (comm.rank() == 0) {
                            comm.send(1, 3.5);
                          } else {
                            (void)comm.recv<int>(0);  // wrong type
                          }
                        }),
               Error);
}

TEST(P2p, MoveOnlyAndVectorPayloads) {
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> big(1000);
      std::iota(big.begin(), big.end(), 0.0);
      comm.send(1, std::move(big));
    } else {
      auto got = comm.recv<std::vector<double>>(0);
      ASSERT_EQ(got.size(), 1000u);
      EXPECT_DOUBLE_EQ(got[999], 999.0);
    }
  });
}

TEST(P2p, UserTagRangeEnforced) {
  EXPECT_THROW(
      run_spmd(2, [](Comm& comm) { comm.send(1 - comm.rank(), 0, kCollectiveTagBase); }),
      Error);
}

TEST(Barrier, SynchronizesGenerations) {
  constexpr int kP = 8;
  std::atomic<int> phase_counter{0};
  run_spmd(kP, [&](Comm& comm) {
    for (int phase = 0; phase < 5; ++phase) {
      phase_counter.fetch_add(1);
      comm.barrier();
      // After the barrier, everyone must observe all kP increments of this
      // phase (and none of the next, because of the second barrier).
      EXPECT_EQ(phase_counter.load(), kP * (phase + 1));
      comm.barrier();
    }
  });
}

TEST(Abort, ExceptionInOneRankUnblocksOthers) {
  // Rank 1 throws; rank 0 is blocked in recv and must be woken instead of
  // deadlocking.  The original exception is the one rethrown.
  try {
    run_spmd(2, [](Comm& comm) {
      if (comm.rank() == 1) throw Error("injected failure");
      (void)comm.recv<int>(1);
    });
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "injected failure");
  }
}

TEST(Abort, ExceptionUnblocksBarrier) {
  try {
    run_spmd(3, [](Comm& comm) {
      if (comm.rank() == 2) throw Error("barrier abort");
      comm.barrier();
    });
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "barrier abort");
  }
}

TEST(Stats, CountsMessagesAndBytes) {
  auto counters = run_spmd_traffic(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, std::int32_t{7});
      comm.send(1, std::vector<double>(10, 1.0));
    } else {
      (void)comm.recv<std::int32_t>(0);
      (void)comm.recv<std::vector<double>>(0);
    }
  });
  EXPECT_EQ(counters.messages, 2u);
  EXPECT_EQ(counters.bytes, sizeof(std::int32_t) + 10 * sizeof(double));
}

TEST(Split, EvenOddSubgroups) {
  auto out = run_spmd_collect<std::pair<int, int>>(6, [](Comm& comm) {
    Comm sub = comm.split(comm.rank() % 2, comm.rank());
    return std::make_pair(sub.rank(), sub.size());
  });
  // Evens 0,2,4 -> sub ranks 0,1,2; odds 1,3,5 -> sub ranks 0,1,2.
  EXPECT_EQ(out[0], std::make_pair(0, 3));
  EXPECT_EQ(out[1], std::make_pair(0, 3));
  EXPECT_EQ(out[2], std::make_pair(1, 3));
  EXPECT_EQ(out[3], std::make_pair(1, 3));
  EXPECT_EQ(out[4], std::make_pair(2, 3));
  EXPECT_EQ(out[5], std::make_pair(2, 3));
}

TEST(Split, NegativeColorYieldsInvalidComm) {
  // int, not bool: vector<bool> bit-packs, and ranks write their slots
  // concurrently — adjacent bits in one byte would be a data race.
  auto out = run_spmd_collect<int>(4, [](Comm& comm) {
    Comm sub = comm.split(comm.rank() == 0 ? -1 : 0, 0);
    return static_cast<int>(sub.valid());
  });
  EXPECT_FALSE(out[0]);
  EXPECT_TRUE(out[1] && out[2] && out[3]);
}

TEST(Split, KeyOrdersNewRanks) {
  // Reverse the ranks within one color via the key.
  auto out = run_spmd_collect<int>(4, [](Comm& comm) {
    Comm sub = comm.split(0, -comm.rank());
    return sub.rank();
  });
  EXPECT_EQ(out[0], 3);
  EXPECT_EQ(out[3], 0);
}

TEST(Split, SubgroupCommunicationIsIsolated) {
  auto out = run_spmd_collect<int>(6, [](Comm& comm) {
    Comm sub = comm.split(comm.rank() % 2, comm.rank());
    // Ring within the subgroup.
    const int to = (sub.rank() + 1) % sub.size();
    const int from = (sub.rank() + sub.size() - 1) % sub.size();
    sub.send(to, comm.rank() * 100);
    return sub.recv<int>(from);
  });
  // Global rank 0 (sub even rank 0) receives from even sub-rank 2 = global 4.
  EXPECT_EQ(out[0], 400);
  EXPECT_EQ(out[1], 500);  // odd subgroup: 1 <- 5
  EXPECT_EQ(out[2], 0);
  EXPECT_EQ(out[4], 200);
}

TEST(Split, RepeatedSplitsReuseEpochs) {
  run_spmd(4, [](Comm& comm) {
    for (int i = 0; i < 3; ++i) {
      Comm sub = comm.split(comm.rank() / 2, comm.rank());
      EXPECT_EQ(sub.size(), 2);
    }
  });
}

}  // namespace
}  // namespace colop::mpsim
