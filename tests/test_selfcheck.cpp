// selfcheck: accepts sound rewrites, pinpoints unsound rewrites caused by
// mis-declared operator properties, with a concrete counterexample.

#include <gtest/gtest.h>

#include "colop/ir/ir.h"
#include "colop/rules/selfcheck.h"

namespace colop::rules {
namespace {

using ir::Program;
using ir::Value;

TEST(SelfCheck, AcceptsSoundRewrites) {
  Program prog;
  prog.scan(ir::op_modmul(97)).allreduce(ir::op_modadd(97));
  const auto result = selfcheck_program(prog, all_rules(),
                                        ir::small_int_gen(0, 96), 13, 2);
  EXPECT_TRUE(result.ok) << result.counterexample;
}

TEST(SelfCheck, AcceptsRootOnlyRewritesAtTheRoot) {
  Program prog;
  prog.bcast().scan(ir::op_add()).reduce(ir::op_add());
  const auto result =
      selfcheck_program(prog, all_rules(), ir::small_int_gen(-9, 9), 13, 2);
  EXPECT_TRUE(result.ok) << result.counterexample;
}

TEST(SelfCheck, CatchesFalselyDeclaredCommutativity) {
  // 2x2 matrix product claiming commutativity: associative, so the scan
  // and reduce themselves are fine, but rule SR-Reduction's op_sr formula
  // silently reorders factors.
  auto liar = ir::BinOp::make({
      .name = "liar_mat2",
      .fn = [](const Value& a, const Value& b) { return (*ir::op_mat2())(a, b); },
      .associative = true,
      .commutative = true,  // FALSE declaration
      .ops_cost = 12,
  });
  Program prog;
  prog.scan(liar).reduce(liar);
  // SR-Reduction fires on the declaration...
  auto m = rule_sr_reduction()->match(prog, 0);
  ASSERT_TRUE(m.has_value());
  // ...and selfcheck exposes the unsoundness with a counterexample.
  auto mat_gen = [](Rng& rng) {
    ir::Tuple t;
    for (int i = 0; i < 4; ++i) t.emplace_back(rng.uniform(-2, 2));
    return Value(std::move(t));
  };
  const auto result = selfcheck_match(prog, *m, mat_gen, 8, 4);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.counterexample.find("SR-Reduction"), std::string::npos);
  EXPECT_NE(result.counterexample.find("UNSOUND"), std::string::npos);
  EXPECT_NE(result.counterexample.find("p = "), std::string::npos);
}

TEST(SelfCheck, CatchesFalselyDeclaredDistributivity) {
  // max falsely declared to distribute over +.
  auto liar_max = ir::BinOp::make({
      .name = "liar_max",
      .fn =
          [](const Value& a, const Value& b) {
            return Value(std::max(a.as_int(), b.as_int()));
          },
      .associative = true,
      .commutative = true,
      .distributes_over = {"+"},  // FALSE declaration
      .ops_cost = 1,
  });
  Program prog;
  prog.scan(liar_max).scan(ir::op_add());
  auto m = rule_ss2_scan()->match(prog, 0);
  ASSERT_TRUE(m.has_value());
  const auto result = selfcheck_match(prog, *m, ir::small_int_gen(-9, 9), 8, 4);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.counterexample.find("SS2-Scan"), std::string::npos);
}

TEST(SelfCheck, WholeCatalogSoundOnStandardOperators) {
  // Every rule, every standard-operator instantiation used in this repo.
  const std::vector<Program> programs = [] {
    std::vector<Program> ps;
    Program p;
    p.scan(ir::op_add()).reduce(ir::op_add());
    ps.push_back(p);
    p = Program{};
    p.scan(ir::op_add()).scan(ir::op_add());
    ps.push_back(p);
    p = Program{};
    p.bcast().scan(ir::op_max()).scan(ir::op_min());
    ps.push_back(p);
    p = Program{};
    p.bcast().scan(ir::op_band()).allreduce(ir::op_bor());
    ps.push_back(p);
    p = Program{};
    p.reduce(ir::op_gcd()).bcast();
    ps.push_back(p);
    return ps;
  }();
  for (const auto& prog : programs) {
    const auto result =
        selfcheck_program(prog, all_rules(), ir::small_int_gen(-20, 20), 9, 2);
    EXPECT_TRUE(result.ok) << prog.show() << "\n" << result.counterexample;
  }
}

}  // namespace
}  // namespace colop::rules
