// Randomized end-to-end property: for randomly generated programs over
// random operators, the optimizer in STRICT mode (full equivalence only,
// root-only rewrites admitted solely when masked by a later bcast) must
// preserve the complete distributed output — on the reference semantics
// and on the thread runtime.

#include <gtest/gtest.h>

#include "colop/exec/thread_executor.h"
#include "colop/ir/ir.h"
#include "colop/rules/optimizer.h"
#include "colop/rules/search.h"
#include "colop/support/rng.h"
#include "colop/verify/certify.h"

namespace colop::rules {
namespace {

using ir::BinOpPtr;
using ir::Dist;
using ir::Program;
using ir::Value;

BinOpPtr random_op(Rng& rng) {
  switch (rng.uniform(0, 6)) {
    case 0: return ir::op_modadd(97);
    case 1: return ir::op_modmul(97);
    case 2: return ir::op_max();
    case 3: return ir::op_min();
    case 4: return ir::op_band();
    case 5: return ir::op_bor();
    default: return ir::op_gcd();
  }
}

Program random_program(Rng& rng) {
  Program p;
  const int n = static_cast<int>(rng.uniform(2, 6));
  for (int i = 0; i < n; ++i) {
    switch (rng.uniform(0, 4)) {
      case 0:
        p.map(ir::fn_id());
        break;
      case 1:
        p.scan(random_op(rng));
        break;
      case 2:
        p.reduce(random_op(rng));
        break;
      case 3:
        p.allreduce(random_op(rng));
        break;
      default:
        p.bcast();
        break;
    }
  }
  return p;
}

Dist random_input(int p, Rng& rng) {
  Dist d(static_cast<std::size_t>(p));
  for (auto& b : d) {
    b.resize(2);
    for (auto& v : b) v = Value(rng.uniform(0, 96));
  }
  return d;
}

class FuzzP : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(ProcessorCounts, FuzzP,
                         ::testing::Values(2, 3, 5, 6, 8, 13, 16),
                         [](const auto& pinfo) {
                           return "p" + std::to_string(pinfo.param);
                         });

TEST_P(FuzzP, StrictGreedyPreservesFullSemantics) {
  const int p = GetParam();
  Rng rng(0xF00D + static_cast<std::uint64_t>(p));
  OptimizerOptions strict;
  strict.policy = EquivalencePolicy::strict;
  const model::Machine mach{.p = p, .m = 2, .ts = 5000, .tw = 2};
  const Optimizer opt(mach, all_rules(), strict);

  int rewrites_seen = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const Program prog = random_program(rng);
    const auto res = opt.optimize(prog);
    rewrites_seen += static_cast<int>(res.log.size());
    const Dist in = random_input(p, rng);
    const Dist expect = prog.eval_reference(in);
    EXPECT_EQ(expect, res.program.eval_reference(in))
        << prog.show() << "\n  -> " << res.program.show();
  }
  // The generator must actually exercise the rules, not vacuously pass.
  EXPECT_GT(rewrites_seen, 10);
}

TEST_P(FuzzP, StrictExhaustivePreservesFullSemantics) {
  const int p = GetParam();
  Rng rng(0xBEEF + static_cast<std::uint64_t>(p));
  OptimizerOptions strict;
  strict.policy = EquivalencePolicy::strict;
  strict.max_search_nodes = 2000;
  const model::Machine mach{.p = p, .m = 2, .ts = 5000, .tw = 2};
  const Optimizer opt(mach, all_rules(), strict);

  for (int trial = 0; trial < 15; ++trial) {
    const Program prog = random_program(rng);
    const auto res = opt.optimize_exhaustive(prog);
    const Dist in = random_input(p, rng);
    EXPECT_EQ(prog.eval_reference(in), res.program.eval_reference(in))
        << prog.show() << "\n  -> " << res.program.show();
  }
}

TEST_P(FuzzP, StrictGreedyPreservesSemanticsOnThreads) {
  const int p = GetParam();
  Rng rng(0xCAFE + static_cast<std::uint64_t>(p));
  OptimizerOptions strict;
  strict.policy = EquivalencePolicy::strict;
  const model::Machine mach{.p = p, .m = 2, .ts = 5000, .tw = 2};
  const Optimizer opt(mach, all_rules(), strict);

  for (int trial = 0; trial < 10; ++trial) {
    const Program prog = random_program(rng);
    const auto res = opt.optimize(prog);
    const Dist in = random_input(p, rng);
    EXPECT_EQ(exec::run_on_threads(prog, in),
              exec::run_on_threads(res.program, in))
        << prog.show() << "\n  -> " << res.program.show();
  }
}

TEST_P(FuzzP, SearchDominatesGreedyAndWinnersCertify) {
  // The search layer's dominance contract on random programs: a narrow
  // beam never does worse than greedy, exhaustive never does worse than
  // the beam, and every searched winner's rewrite sequence re-discharges
  // its certificates (V304 not-evaluable warnings are allowed; V301-V303
  // failures are not).
  const int p = GetParam();
  Rng rng(0x5EA7C4 + static_cast<std::uint64_t>(p));
  OptimizerOptions strict;
  strict.policy = EquivalencePolicy::strict;
  const model::Machine mach{.p = p, .m = 2, .ts = 5000, .tw = 2};

  SearchOptions beam_opts;
  beam_opts.strategy = SearchStrategy::beam;
  beam_opts.beam_width = 4;
  beam_opts.base = strict;
  const SearchOptimizer beam(mach, all_rules(), beam_opts);

  SearchOptions ex_opts;
  ex_opts.strategy = SearchStrategy::exhaustive;
  ex_opts.beam_width = 0;
  ex_opts.base = strict;
  ex_opts.base.max_search_nodes = 50000;
  const SearchOptimizer exhaustive(mach, all_rules(), ex_opts);

  verify::CertifyOptions cheap;
  cheap.max_p = 5;
  cheap.trials_per_p = 1;
  cheap.property_trials = 20;

  for (int trial = 0; trial < 10; ++trial) {
    const Program prog = random_program(rng);
    const auto b = beam.search(prog);
    const auto e = exhaustive.search(prog);
    EXPECT_LE(b.best.cost_final, b.greedy_cost) << prog.show();
    EXPECT_LE(e.best.cost_final, b.best.cost_final) << prog.show();

    const auto cert = verify::certify_search(prog, b, cheap);
    EXPECT_FALSE(cert.fell_back_to_source) << prog.show();
    const auto& winner = cert.search.ranked[cert.search.winner_index];
    EXPECT_EQ(winner.certified, 1)
        << prog.show() << "\n  -> " << winner.program.show();
  }
}

TEST_P(FuzzP, DefaultModePreservesRootSemantics) {
  // With root-only rewrites allowed, at least the root block must be
  // preserved when the program's last collective deposits the result at
  // the root (reduce-terminated programs).
  const int p = GetParam();
  Rng rng(0xD1CE + static_cast<std::uint64_t>(p));
  const model::Machine mach{.p = p, .m = 2, .ts = 5000, .tw = 2};
  const Optimizer opt(mach);

  for (int trial = 0; trial < 40; ++trial) {
    Program prog = random_program(rng);
    prog.reduce(ir::op_modadd(97));  // deterministic root-located result
    const auto res = opt.optimize(prog);
    const Dist in = random_input(p, rng);
    EXPECT_EQ(prog.eval_reference(in)[0], res.program.eval_reference(in)[0])
        << prog.show() << "\n  -> " << res.program.show();
  }
}

}  // namespace
}  // namespace colop::rules
