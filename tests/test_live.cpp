// Live telemetry bus: SPSC lane round trips and lap accounting, the bus's
// pinned-lane vs shared-lane publish paths, run lifecycle edges, the
// sampler's registry folding and snapshot JSON, the wait_newer long-poll
// primitive, SSE framing goldens, and a producers-vs-scraper hammer that
// TSAN and the monotonic-counter assertions both watch.

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "colop/obs/json.h"
#include "colop/obs/live.h"
#include "colop/obs/metrics.h"

namespace obs = colop::obs;

namespace {

obs::LiveEvent make_event(obs::LiveEv kind, int rank, std::uint16_t stage,
                          std::uint64_t a = 0, std::uint64_t b = 0) {
  obs::LiveEvent ev;
  ev.t_ns = 1;
  ev.kind = kind;
  ev.stage = stage;
  ev.rank = rank;
  ev.a = a;
  ev.b = b;
  return ev;
}

TEST(LiveLane, RoundTripPreservesOrderAndPayload) {
  obs::LiveLane lane(64);
  for (int i = 0; i < 10; ++i)
    lane.push(make_event(obs::LiveEv::send, i, static_cast<std::uint16_t>(i),
                         100 + static_cast<std::uint64_t>(i), 7));
  std::uint64_t cursor = 0;
  std::uint64_t dropped = 0;
  std::vector<obs::LiveEvent> out;
  EXPECT_EQ(lane.drain(cursor, out, dropped), 10u);
  EXPECT_EQ(dropped, 0u);
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)].kind, obs::LiveEv::send);
    EXPECT_EQ(out[static_cast<std::size_t>(i)].rank, i);
    EXPECT_EQ(out[static_cast<std::size_t>(i)].stage, i);
    EXPECT_EQ(out[static_cast<std::size_t>(i)].a,
              100 + static_cast<std::uint64_t>(i));
    EXPECT_EQ(out[static_cast<std::size_t>(i)].b, 7u);
  }
  // Cursor advanced to head: a second drain returns nothing.
  EXPECT_EQ(lane.drain(cursor, out, dropped), 0u);
}

TEST(LiveLane, LappedRecordsAreCountedAsDropped) {
  obs::LiveLane lane(16);  // minimum ring
  for (std::uint64_t i = 0; i < 40; ++i)
    lane.push(make_event(obs::LiveEv::mark, 0, obs::LiveEvent::kNoStage, i));
  std::uint64_t cursor = 0;
  std::uint64_t dropped = 0;
  std::vector<obs::LiveEvent> out;
  lane.drain(cursor, out, dropped);
  EXPECT_EQ(dropped, 24u);  // head 40 - capacity 16
  ASSERT_EQ(out.size(), 16u);
  EXPECT_EQ(out.front().a, 24u);  // oldest surviving record
  EXPECT_EQ(out.back().a, 39u);
}

TEST(LiveLane, NoStageAndNegativeRankSurvivePacking) {
  obs::LiveLane lane(16);
  lane.push(make_event(obs::LiveEv::stall, -1, obs::LiveEvent::kNoStage, 5));
  std::uint64_t cursor = 0;
  std::uint64_t dropped = 0;
  std::vector<obs::LiveEvent> out;
  lane.drain(cursor, out, dropped);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].stage, obs::LiveEvent::kNoStage);
  EXPECT_EQ(out[0].rank, -1);
}

TEST(LiveEvName, CoversEveryKind) {
  EXPECT_STREQ(obs::live_ev_name(obs::LiveEv::stage_begin), "stage_begin");
  EXPECT_STREQ(obs::live_ev_name(obs::LiveEv::stage_end), "stage_end");
  EXPECT_STREQ(obs::live_ev_name(obs::LiveEv::send), "send");
  EXPECT_STREQ(obs::live_ev_name(obs::LiveEv::recv), "recv");
  EXPECT_STREQ(obs::live_ev_name(obs::LiveEv::queue), "queue");
  EXPECT_STREQ(obs::live_ev_name(obs::LiveEv::barrier), "barrier");
  EXPECT_STREQ(obs::live_ev_name(obs::LiveEv::stall), "stall");
  EXPECT_STREQ(obs::live_ev_name(obs::LiveEv::mark), "mark");
}

TEST(LiveBus, DisabledPublishIsANoOp) {
  obs::LiveBus bus(4, 64);
  bus.publish(obs::LiveEv::mark, 0);
  std::vector<std::uint64_t> cursors;
  std::vector<obs::LiveEvent> out;
  std::uint64_t dropped = 0;
  EXPECT_EQ(bus.drain_all(cursors, out, dropped), 0u);
}

TEST(LiveBus, SharedLaneCollectsUnpinnedPublishes) {
  obs::LiveBus bus(4, 64);
  bus.set_enabled(true);
  bus.publish(obs::LiveEv::mark, 3, obs::LiveEvent::kNoStage, 11);
  std::vector<std::uint64_t> cursors;
  std::vector<obs::LiveEvent> out;
  std::uint64_t dropped = 0;
  EXPECT_EQ(bus.drain_all(cursors, out, dropped), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, obs::LiveEv::mark);
  EXPECT_EQ(out[0].rank, 3);
  EXPECT_EQ(out[0].a, 11u);
}

TEST(LiveBus, PinnedLanesFromManyThreadsLoseNothing) {
  obs::LiveBus bus(8, 4096);
  bus.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kEach = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bus, t] {
      const obs::LiveLaneScope scope(bus);
      for (int i = 0; i < kEach; ++i)
        bus.publish(obs::LiveEv::send, t, obs::LiveEvent::kNoStage,
                    static_cast<std::uint64_t>(i));
    });
  }
  for (auto& th : threads) th.join();
  std::vector<std::uint64_t> cursors;
  std::vector<obs::LiveEvent> out;
  std::uint64_t dropped = 0;
  bus.drain_all(cursors, out, dropped);
  EXPECT_EQ(out.size(), static_cast<std::size_t>(kThreads * kEach));
  EXPECT_EQ(dropped, 0u);
  std::vector<int> per_rank(kThreads, 0);
  for (const auto& ev : out) {
    ASSERT_GE(ev.rank, 0);
    ASSERT_LT(ev.rank, kThreads);
    ++per_rank[static_cast<std::size_t>(ev.rank)];
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(per_rank[static_cast<std::size_t>(t)], kEach);
}

TEST(LiveBus, LanesAreReusedAfterScopeRelease) {
  obs::LiveBus bus(2, 64);  // shared lane + exactly one pinnable lane
  bus.set_enabled(true);
  for (int round = 0; round < 3; ++round) {
    std::thread([&bus, round] {
      const obs::LiveLaneScope scope(bus);
      bus.publish(obs::LiveEv::mark, round);
    }).join();
  }
  std::vector<std::uint64_t> cursors;
  std::vector<obs::LiveEvent> out;
  std::uint64_t dropped = 0;
  bus.drain_all(cursors, out, dropped);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(dropped, 0u);
}

TEST(LiveBus, RunLifecycleBumpsSeqOnEveryEdge) {
  obs::LiveBus bus(4, 64);
  const auto s0 = bus.run_state();
  EXPECT_FALSE(s0.active);

  obs::LiveRunInfo info;
  info.trace_id = "cafe";
  info.repeats = 3;
  bus.begin_run(info);
  const auto s1 = bus.run_state();
  EXPECT_TRUE(s1.active);
  EXPECT_GT(s1.seq, s0.seq);
  EXPECT_EQ(s1.info.trace_id, "cafe");

  bus.note_repeat(2);
  EXPECT_EQ(bus.run_state().repeat, 2);

  bus.end_run();
  const auto s2 = bus.run_state();
  EXPECT_FALSE(s2.active);
  EXPECT_GT(s2.seq, s1.seq);
  EXPECT_GE(s2.ended_ns, s2.started_ns);

  bus.end_run();  // idempotent: no second edge
  EXPECT_EQ(bus.run_state().seq, s2.seq);
}

TEST(LiveSampler, FoldsEventsIntoRegistryInstruments) {
  obs::LiveBus bus(4, 256);
  bus.set_enabled(true);
  obs::Registry reg;
  obs::LiveSampler sampler(bus, reg);  // no start(): drive sample_once()

  obs::LiveRunInfo info;
  info.trace_id = "deadbeef";
  info.program = "scan(+) ; reduce(+)";
  info.stage_labels = {"scan(+)", "reduce(+)"};
  info.ranks = 2;
  info.repeats = 1;
  bus.begin_run(info);

  bus.publish(obs::LiveEv::stage_begin, 0, 0);
  bus.publish(obs::LiveEv::stage_end, 0, 0, 2'000'000);  // 2 ms
  bus.publish(obs::LiveEv::send, 0, obs::LiveEvent::kNoStage, 512, 1);
  bus.publish(obs::LiveEv::recv, 1, obs::LiveEvent::kNoStage, 512, 3'000'000);
  bus.publish(obs::LiveEv::barrier, 1, obs::LiveEvent::kNoStage, 1'000'000);
  sampler.sample_once();

  EXPECT_EQ(reg.value("colop_live_events_total", {{"kind", "stage_end"}}), 1);
  EXPECT_EQ(reg.value("colop_live_events_total", {{"kind", "send"}}), 1);
  EXPECT_EQ(reg.value("colop_live_stage_completions_total"), 1);
  EXPECT_EQ(reg.value("colop_live_sends_total"), 1);
  EXPECT_EQ(reg.value("colop_live_send_bytes_total"), 512);
  EXPECT_NEAR(reg.value("colop_live_recv_wait_seconds_total", {{"rank", "1"}}),
              0.003, 1e-9);
  EXPECT_NEAR(reg.value("colop_live_barrier_wait_seconds_total", {{"rank", "1"}}),
              0.001, 1e-9);
  EXPECT_EQ(reg.value("colop_live_running"), 1);
  EXPECT_EQ(reg.value("colop_live_progress_stages_done"), 1);
  EXPECT_EQ(reg.value("colop_live_progress_stages"), 4);  // 2 stages × 2 ranks
  EXPECT_EQ(reg.value("colop_live_queue_depth", {{"rank", "0"}}), 0);

  const obs::LiveSnapshot snap = sampler.snapshot();
  EXPECT_EQ(snap.state, "running");
  EXPECT_EQ(snap.trace_id, "deadbeef");
  EXPECT_EQ(snap.stages_done, 1u);
  EXPECT_EQ(snap.stages_total, 4u);
  ASSERT_EQ(snap.ranks.size(), 2u);
  EXPECT_EQ(snap.ranks[0].sends, 1u);
  EXPECT_EQ(snap.ranks[0].send_bytes, 512u);
  EXPECT_NEAR(snap.ranks[1].comm_ms, 3.0, 1e-9);
  EXPECT_NEAR(snap.ranks[1].idle_ms, 1.0, 1e-9);

  bus.end_run();
  sampler.sample_once();
  EXPECT_EQ(sampler.snapshot().state, "done");
  EXPECT_EQ(reg.value("colop_live_running"), 0);

  // The exposition the sampler writes must satisfy the Prometheus lint the
  // exporter is pinned to.
  std::ostringstream os;
  reg.write_prometheus(os);
  EXPECT_TRUE(obs::prom_lint(os.str()).empty());
}

TEST(LiveSampler, StallEventFlagsRankAndState) {
  obs::LiveBus bus(4, 64);
  bus.set_enabled(true);
  obs::Registry reg;
  obs::LiveSampler sampler(bus, reg);
  obs::LiveRunInfo info;
  info.ranks = 1;
  info.stage_labels = {"bcast"};
  bus.begin_run(info);
  bus.publish(obs::LiveEv::stall, 0, obs::LiveEvent::kNoStage, 9'000'000);
  sampler.sample_once();
  EXPECT_EQ(sampler.snapshot().state, "stalled");
  ASSERT_FALSE(sampler.snapshot().ranks.empty());
  EXPECT_TRUE(sampler.snapshot().ranks[0].stalled);
  EXPECT_EQ(reg.value("colop_live_stalled"), 1);
  EXPECT_EQ(reg.value("colop_live_rank_stalled", {{"rank", "0"}}), 1);

  // The next stage_begin clears the verdict.
  bus.publish(obs::LiveEv::stage_begin, 0, 0);
  sampler.sample_once();
  EXPECT_EQ(sampler.snapshot().state, "running");
  bus.end_run();
}

TEST(LiveSampler, IdleWithoutARunAndSeqQuiescesWhenNothingMoves) {
  obs::LiveBus bus(4, 64);
  bus.set_enabled(true);
  obs::Registry reg;
  obs::LiveSampler sampler(bus, reg);
  sampler.sample_once();
  EXPECT_EQ(sampler.snapshot().state, "idle");
  const std::uint64_t seq = sampler.snapshot().seq;
  sampler.sample_once();
  sampler.sample_once();
  EXPECT_EQ(sampler.snapshot().seq, seq);  // no events, no run: no bumps
}

TEST(LiveSampler, SnapshotJsonParsesAndCarriesProgress) {
  obs::LiveBus bus(4, 64);
  bus.set_enabled(true);
  obs::Registry reg;
  obs::LiveSampler sampler(bus, reg);
  obs::LiveRunInfo info;
  info.trace_id = "0123456789abcdef";
  info.program = "bcast ; scan(+)";
  info.stage_labels = {"bcast", "scan(+)"};
  info.ranks = 1;
  info.repeats = 2;
  bus.begin_run(info);
  bus.note_repeat(1);
  bus.publish(obs::LiveEv::stage_end, 0, 0, 1'000'000);
  sampler.sample_once();

  const auto doc = obs::json::parse(sampler.snapshot().to_json());
  EXPECT_EQ(doc.get("state")->str, "running");
  EXPECT_EQ(doc.get("trace_id")->str, "0123456789abcdef");
  EXPECT_EQ(doc.get("program")->str, "bcast ; scan(+)");
  const auto* progress = doc.get("progress");
  ASSERT_TRUE(progress != nullptr);
  EXPECT_EQ(progress->get("stages_done")->num, 1);
  EXPECT_EQ(progress->get("stages_total")->num, 4);  // 2 stages × 2 repeats
  EXPECT_EQ(progress->get("repeat")->num, 1);
  EXPECT_EQ(progress->get("repeats")->num, 2);
  const auto* ranks = doc.get("ranks");
  ASSERT_TRUE(ranks != nullptr);
  ASSERT_EQ(ranks->items.size(), 1u);
  EXPECT_EQ(ranks->items[0]->get("stages_done")->num, 1);
  bus.end_run();
}

TEST(LiveSampler, WaitNewerTimesOutAndWakes) {
  obs::LiveBus bus(4, 64);
  bus.set_enabled(true);
  obs::Registry reg;
  obs::LiveSampler sampler(bus, reg);
  sampler.sample_once();
  const std::uint64_t seq = sampler.snapshot().seq;

  // Nothing changes: the poll times out and returns the same snapshot.
  EXPECT_EQ(sampler.wait_newer(seq, 30).seq, seq);

  // A publish folded by a concurrent sample wakes the waiter.
  std::thread waker([&] {
    bus.publish(obs::LiveEv::mark, 0);
    sampler.sample_once();
  });
  const obs::LiveSnapshot fresh = sampler.wait_newer(seq, 5000);
  waker.join();
  EXPECT_GT(fresh.seq, seq);
}

TEST(LiveSampler, BackgroundThreadFoldsWithoutManualSampling) {
  obs::LiveBus bus(4, 256);
  bus.set_enabled(true);
  obs::Registry reg;
  obs::LiveSampler sampler(bus, reg);
  sampler.start(5);
  EXPECT_EQ(sampler.interval_ms(), 5);
  bus.publish(obs::LiveEv::mark, 0);
  const obs::LiveSnapshot snap = sampler.wait_newer(0, 5000);
  EXPECT_GE(snap.events_total, 1u);
  sampler.stop();
  EXPECT_GE(reg.value("colop_live_samples_total"), 1);
}

// Producers hammer pinned lanes while a scraper thread interleaves
// sample_once() with full Prometheus expositions.  TSAN watches the
// memory-order contract; the assertions watch counter monotonicity.
TEST(LiveHammer, CountersStayMonotonicUnderConcurrentScrapes) {
  obs::LiveBus bus(8, 512);  // small rings force lap-and-drop paths
  bus.set_enabled(true);
  obs::Registry reg;
  obs::LiveSampler sampler(bus, reg);
  obs::LiveRunInfo info;
  info.ranks = 4;
  info.stage_labels = {"scan(+)"};
  bus.begin_run(info);

  constexpr int kThreads = 4;
  constexpr int kEach = 5000;
  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&bus, &go, t] {
      const obs::LiveLaneScope scope(bus);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kEach; ++i) {
        bus.publish(obs::LiveEv::stage_begin, t, 0);
        bus.publish(obs::LiveEv::stage_end, t, 0,
                    static_cast<std::uint64_t>(i));
        bus.publish(obs::LiveEv::send, t, obs::LiveEvent::kNoStage, 64,
                    static_cast<std::uint64_t>((t + 1) % kThreads));
      }
    });
  }

  go.store(true, std::memory_order_release);
  double last_events = 0;
  double last_completions = 0;
  for (int scrape = 0; scrape < 50; ++scrape) {
    sampler.sample_once();
    std::ostringstream os;
    reg.write_prometheus(os);
    const double events =
        reg.value("colop_live_events_total", {{"kind", "stage_end"}}) +
        reg.value("colop_live_dropped_events_total");
    const double completions =
        reg.value("colop_live_stage_completions_total");
    EXPECT_GE(events, last_events);
    EXPECT_GE(completions, last_completions);
    last_events = events;
    last_completions = completions;
  }
  for (auto& th : producers) th.join();
  bus.end_run();
  sampler.sample_once();

  // Every event was either folded or counted as dropped; nothing vanished.
  const obs::LiveSnapshot snap = sampler.snapshot();
  EXPECT_EQ(snap.events_total + snap.dropped_total,
            static_cast<std::uint64_t>(kThreads) * kEach * 3);
  EXPECT_EQ(snap.state, "done");
  std::ostringstream os;
  reg.write_prometheus(os);
  EXPECT_TRUE(obs::prom_lint(os.str()).empty());
}

TEST(SseFrame, SingleLineGolden) {
  EXPECT_EQ(obs::sse_frame(7, "snapshot", R"({"seq":7})"),
            "id: 7\nevent: snapshot\ndata: {\"seq\":7}\n\n");
}

TEST(SseFrame, EndFrameGolden) {
  EXPECT_EQ(obs::sse_frame(42, "end", R"({"state":"done"})"),
            "id: 42\nevent: end\ndata: {\"state\":\"done\"}\n\n");
}

TEST(SseFrame, MultiLineDataSplitsPerSpec) {
  EXPECT_EQ(obs::sse_frame(1, "snapshot", "line1\nline2\nline3"),
            "id: 1\nevent: snapshot\n"
            "data: line1\ndata: line2\ndata: line3\n\n");
  // A trailing newline yields a final empty data field, still terminated.
  EXPECT_EQ(obs::sse_frame(2, "snapshot", "x\n"),
            "id: 2\nevent: snapshot\ndata: x\ndata: \n\n");
}

TEST(LiveEnabled, GlobalFlagMirrorsGlobalBusOnly) {
  obs::LiveBus local(2, 64);
  local.set_enabled(true);  // a test-local bus must not flip the fast path
  EXPECT_FALSE(obs::live_enabled());
  local.set_enabled(false);

  obs::LiveBus::global().set_enabled(true);
  EXPECT_TRUE(obs::live_enabled());
  obs::LiveBus::global().set_enabled(false);
  EXPECT_FALSE(obs::live_enabled());
}

}  // namespace
