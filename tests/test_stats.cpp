// Floating-point streaming statistics: the moments merge, SR-Reduction on
// a real-valued operator, and tolerance-aware self-checking.

#include <gtest/gtest.h>

#include <cmath>

#include "colop/apps/stats.h"
#include "colop/exec/thread_executor.h"
#include "colop/ir/ir.h"
#include "colop/rules/optimizer.h"
#include "colop/rules/selfcheck.h"
#include "colop/support/rng.h"

namespace colop::apps {
namespace {

using ir::Dist;
using ir::Value;


ir::Value random_sample(Rng& rng) { return Value(rng.uniform01() * 20 - 10); }

TEST(Stats, MergeMatchesSequentialMoments) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> xs(16);
    for (auto& x : xs) x = rng.uniform01() * 100 - 50;
    const Moments expect = moments_sequential(xs);
    // Merge two halves with op_stats.
    const std::vector<double> lo(xs.begin(), xs.begin() + 7);
    const std::vector<double> hi(xs.begin() + 7, xs.end());
    auto encode = [](const Moments& m) {
      return Value(ir::Tuple{Value(m.n), Value(m.mean), Value(m.m2)});
    };
    const Moments merged = moments_of((*op_stats())(
        encode(moments_sequential(lo)), encode(moments_sequential(hi))));
    EXPECT_NEAR(merged.mean, expect.mean, 1e-9);
    EXPECT_NEAR(merged.m2, expect.m2, 1e-6);
    EXPECT_DOUBLE_EQ(merged.n, expect.n);
  }
}

TEST(Stats, ApproxEqualDistinguishesToleranceLevels) {
  const Value a(1.0), b(1.0 + 1e-12);
  EXPECT_TRUE(ir::approx_equal(a, b, 1e-9));
  EXPECT_FALSE(ir::approx_equal(a, b, 0));  // exact mode
  EXPECT_FALSE(ir::approx_equal(Value(1.0), Value(1.1), 1e-9));
  EXPECT_TRUE(ir::approx_equal(Value::undefined(), Value::undefined(), 1e-9));
  EXPECT_FALSE(ir::approx_equal(Value::undefined(), Value(1.0), 1e-9));
  EXPECT_TRUE(ir::approx_equal(Value(ir::Tuple{a}), Value(ir::Tuple{b}), 1e-9));
}

class StatsP : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(ProcessorCounts, StatsP,
                         ::testing::Values(1, 2, 3, 5, 6, 8, 13, 16),
                         [](const auto& pinfo) {
                           return "p" + std::to_string(pinfo.param);
                         });

TEST_P(StatsP, PipelineComputesGlobalMoments) {
  const int p = GetParam();
  Rng rng(32);
  Dist in(static_cast<std::size_t>(p));
  std::vector<double> all;
  for (auto& block : in) {
    const double x = rng.uniform01() * 8 - 4;
    block = {Value(x)};
    all.push_back(x);
  }
  const Moments expect = moments_sequential(all);
  const Dist out = exec::run_on_threads(stats_summary_program(), in);
  for (int r = 0; r < p; ++r) {
    const Moments got = moments_of(out[static_cast<std::size_t>(r)][0]);
    EXPECT_DOUBLE_EQ(got.n, expect.n);
    EXPECT_NEAR(got.mean, expect.mean, 1e-9);
    EXPECT_NEAR(got.m2, expect.m2, 1e-6);
  }
}

TEST(Stats, SrReductionFiresOnTheStatsPipeline) {
  const model::Machine mach{.p = 16, .m = 8, .ts = 500, .tw = 2};
  const auto res = rules::Optimizer(mach).optimize(stats_pipeline_program());
  ASSERT_FALSE(res.log.empty());
  EXPECT_EQ(res.log[0].rule, "SR-Reduction");
  EXPECT_EQ(res.program.collective_count(), 1u);
}

TEST_P(StatsP, FusedPipelineAgreesWithinTolerance) {
  const int p = GetParam();
  const model::Machine mach{.p = p, .m = 1, .ts = 500, .tw = 2};
  const auto res = rules::Optimizer(mach).optimize(stats_pipeline_program());

  Rng rng(33);
  Dist in(static_cast<std::size_t>(p));
  for (auto& block : in) block = {random_sample(rng)};
  const Dist a = exec::run_on_threads(stats_pipeline_program(), in);
  const Dist b = exec::run_on_threads(res.program, in);
  EXPECT_TRUE(ir::approx_equal(a, b, 1e-9))
      << ir::to_string(a) << "\nvs\n" << ir::to_string(b);
}

TEST(Stats, SelfcheckPassesWithToleranceFailsExact) {
  // Exact comparison flags harmless fp re-association as a mismatch at
  // some p; the documented rel_tol mode accepts it.
  const auto prog = stats_pipeline_program();
  auto gen = [](Rng& rng) { return random_sample(rng); };
  const auto approx = rules::selfcheck_program(prog, rules::all_rules(), gen,
                                               13, 2, 1, 1, 1e-9);
  EXPECT_TRUE(approx.ok) << approx.counterexample;
  const auto exact =
      rules::selfcheck_program(prog, rules::all_rules(), gen, 13, 2, 1, 1, 0);
  EXPECT_FALSE(exact.ok)
      << "fp re-association should be visible under exact comparison";
}

}  // namespace
}  // namespace colop::apps
