// Rule equivalences ON THE WIRE: original and rewritten programs are
// executed on the mpsim thread runtime (real message passing, real
// schedules) and must produce identical distributed results.  Also checks
// the raison d'être of the rules: the rewritten program sends FEWER
// messages.

#include <gtest/gtest.h>

#include "colop/exec/thread_executor.h"
#include "colop/ir/ir.h"
#include "colop/rules/rules.h"
#include "colop/support/rng.h"

namespace colop::rules {
namespace {

using ir::Dist;
using ir::Program;
using ir::Value;

Dist random_dist(int p, std::size_t block, std::int64_t lo, std::int64_t hi,
                 std::uint64_t seed) {
  Rng rng(seed);
  Dist d(static_cast<std::size_t>(p));
  for (auto& b : d) {
    b.resize(block);
    for (auto& v : b) v = Value(rng.uniform(lo, hi));
  }
  return d;
}

struct Case {
  RulePtr rule;
  Program lhs;
  std::int64_t lo, hi;
};

std::vector<Case> thread_cases() {
  std::vector<Case> cases;
  {
    Program p;
    p.scan(ir::op_mul()).allreduce(ir::op_add());
    cases.push_back({rule_sr2_reduction(), p, -1, 1});
  }
  {
    Program p;
    p.scan(ir::op_modmul(97)).reduce(ir::op_modadd(97));
    cases.push_back({rule_sr2_reduction(), p, 0, 96});
  }
  {
    Program p;
    p.scan(ir::op_add()).reduce(ir::op_add());
    cases.push_back({rule_sr_reduction(), p, -40, 40});
  }
  {
    Program p;
    p.scan(ir::op_add()).allreduce(ir::op_add());
    cases.push_back({rule_sr_reduction(), p, -40, 40});
  }
  {
    Program p;
    p.scan(ir::op_add()).scan(ir::op_max());
    cases.push_back({rule_ss2_scan(), p, -40, 40});
  }
  {
    Program p;
    p.scan(ir::op_add()).scan(ir::op_add());
    cases.push_back({rule_ss_scan(), p, -40, 40});
  }
  {
    Program p;
    p.bcast().scan(ir::op_add());
    cases.push_back({rule_bs_comcast(), p, -40, 40});
  }
  {
    Program p;
    p.bcast().scan(ir::op_modmul(97)).scan(ir::op_modadd(97));
    cases.push_back({rule_bss2_comcast(), p, 0, 96});
  }
  {
    Program p;
    p.bcast().scan(ir::op_add()).scan(ir::op_add());
    cases.push_back({rule_bss_comcast(), p, -40, 40});
  }
  {
    Program p;
    p.bcast().reduce(ir::op_add());
    cases.push_back({rule_br_local(), p, -40, 40});
  }
  {
    Program p;
    p.bcast().scan(ir::op_modmul(97)).reduce(ir::op_modadd(97));
    cases.push_back({rule_bsr2_local(), p, 0, 96});
  }
  {
    Program p;
    p.bcast().scan(ir::op_add()).reduce(ir::op_add());
    cases.push_back({rule_bsr_local(), p, -40, 40});
  }
  {
    Program p;
    p.bcast().allreduce(ir::op_add());
    cases.push_back({rule_cr_alllocal(), p, -40, 40});
  }
  {
    Program p;
    p.bcast().scan(ir::op_add()).allreduce(ir::op_add());
    cases.push_back({rule_bsr_alllocal(), p, -40, 40});
  }
  return cases;
}

class RuleThreadsP : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(ProcessorCounts, RuleThreadsP,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 11, 16),
                         [](const auto& pinfo) {
                           return "p" + std::to_string(pinfo.param);
                         });

TEST_P(RuleThreadsP, RewrittenProgramsAgreeOnTheWire) {
  const int p = GetParam();
  std::uint64_t seed = 900;
  for (const auto& c : thread_cases()) {
    auto m = c.rule->match(c.lhs, 0);
    ASSERT_TRUE(m.has_value()) << c.rule->name() << ": " << c.lhs.show();
    const Program rhs = m->apply(c.lhs);
    const Dist in = random_dist(p, 2, c.lo, c.hi, ++seed);
    const Dist out_l = exec::run_on_threads(c.lhs, in);
    const Dist out_r = exec::run_on_threads(rhs, in);
    if (m->equivalence == Equivalence::full) {
      EXPECT_EQ(out_l, out_r) << c.rule->name() << " p=" << p
                              << "\n  lhs=" << c.lhs.show()
                              << "\n  rhs=" << rhs.show();
    } else {
      const auto root = static_cast<std::size_t>(m->root);
      EXPECT_EQ(out_l[root], out_r[root])
          << c.rule->name() << " p=" << p << " (root-only)";
    }
  }
}

TEST_P(RuleThreadsP, ThreadExecutionMatchesReferenceSemantics) {
  const int p = GetParam();
  std::uint64_t seed = 1700;
  for (const auto& c : thread_cases()) {
    const Dist in = random_dist(p, 2, c.lo, c.hi, ++seed);
    EXPECT_EQ(exec::run_on_threads(c.lhs, in), c.lhs.eval_reference(in))
        << c.lhs.show() << " p=" << p;
    const Program rhs = c.rule->match(c.lhs, 0)->apply(c.lhs);
    EXPECT_EQ(exec::run_on_threads(rhs, in), rhs.eval_reference(in))
        << rhs.show() << " p=" << p;
  }
}

TEST_P(RuleThreadsP, RewritesReduceMessageCount) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP() << "no messages at p=1";
  for (const auto& c : thread_cases()) {
    const Program rhs = c.rule->match(c.lhs, 0)->apply(c.lhs);
    const Dist in = random_dist(p, 2, c.lo, c.hi, 4242);
    const auto before = exec::run_on_threads_instrumented(c.lhs, in).traffic;
    const auto after = exec::run_on_threads_instrumented(rhs, in).traffic;
    EXPECT_LT(after.messages, before.messages)
        << c.rule->name() << " p=" << p << ": " << before.messages << " -> "
        << after.messages;
  }
}

}  // namespace
}  // namespace colop::rules
