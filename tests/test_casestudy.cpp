// The paper's case study (Section 5) and local-stage fusion: PolyEval_1/2/3
// agree with ground truth on the reference evaluator AND on the thread
// runtime, the derivation steps are produced by the actual rule/fusion
// machinery, and Figure 6's comcast values are reproduced.

#include <gtest/gtest.h>

#include <cmath>

#include "colop/apps/polyeval.h"
#include "colop/exec/thread_executor.h"
#include "colop/model/cost.h"
#include "colop/ir/ir.h"
#include "colop/rules/fuse.h"
#include "colop/rules/rules.h"
#include "colop/support/rng.h"

namespace colop::apps {
namespace {

using ir::Program;
using ir::Value;

std::vector<double> random_coeffs(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> as(static_cast<std::size_t>(n));
  for (auto& a : as) a = rng.uniform01() * 2 - 1;
  return as;
}

class PolyEvalP : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Degrees, PolyEvalP,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 16),
                         [](const auto& pinfo) {
                           return "n" + std::to_string(pinfo.param);
                         });

TEST_P(PolyEvalP, AllThreeVersionsMatchGroundTruthOnReference) {
  const int p = GetParam();
  const auto as = random_coeffs(p, 5);
  const std::vector<double> ys{0.5, -1.25, 2.0, 0.0, 1.0};
  const auto expect = polyeval_expected(as, ys);
  for (const auto& prog :
       {polyeval_1(as), polyeval_2(as), polyeval_3(as), polyeval_sr2(as)}) {
    const auto got = polyeval_result(prog.eval_reference(polyeval_input(p, ys)));
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t j = 0; j < expect.size(); ++j)
      EXPECT_NEAR(got[j], expect[j], 1e-9 + 1e-9 * std::abs(expect[j]))
          << prog.show();
  }
}

TEST_P(PolyEvalP, AllThreeVersionsMatchOnThreads) {
  const int p = GetParam();
  const auto as = random_coeffs(p, 6);
  const std::vector<double> ys{1.5, -0.5, 0.25};
  const auto expect = polyeval_expected(as, ys);
  for (const auto& prog :
       {polyeval_1(as), polyeval_2(as), polyeval_3(as), polyeval_sr2(as)}) {
    const auto got =
        polyeval_result(exec::run_on_threads(prog, polyeval_input(p, ys)));
    for (std::size_t j = 0; j < expect.size(); ++j)
      EXPECT_NEAR(got[j], expect[j], 1e-9 + 1e-9 * std::abs(expect[j]))
          << prog.show();
  }
}

TEST(PolyEval, DerivationShapesMatchThePaper) {
  const auto as = random_coeffs(8, 7);
  // Eq 18: four stages, two of them collective communications + reduce.
  EXPECT_EQ(polyeval_1(as).size(), 4u);
  EXPECT_EQ(polyeval_1(as).collective_count(), 3u);
  // Eq 19: BS-Comcast removed the scan.
  EXPECT_EQ(polyeval_2(as).collective_count(), 2u);
  EXPECT_EQ(polyeval_2(as).size(), 4u);
  // Eq 20: the two local stages fused into map2#(op_new).
  EXPECT_EQ(polyeval_3(as).size(), 3u);
  EXPECT_EQ(polyeval_3(as).collective_count(), 2u);
  // The optimal variant ([8]): bcast + ONE reduction, no scan.
  EXPECT_EQ(polyeval_sr2(as).collective_count(), 2u);
  EXPECT_FALSE(ir::check_shapes(polyeval_sr2(as)).has_value());
}

TEST(PolyEval, CalculusRanksTheTwoDerivationRoutes) {
  // The SR2 route beats the specification (one start-up saved per phase),
  // but the comcast route wins overall (1-word vs 2-word reduce payload).
  const auto as = random_coeffs(16, 9);
  const model::Machine mach{.p = 16, .m = 256, .ts = 400, .tw = 2};
  const double t1 = model::program_time(polyeval_1(as), mach);
  const double t3 = model::program_time(polyeval_3(as), mach);
  const double tsr2 = model::program_time(polyeval_sr2(as), mach);
  EXPECT_LT(tsr2, t1);
  EXPECT_LT(t3, tsr2);
}

TEST(PolyEval, RewritingSavesMessages) {
  const int p = 8;
  const auto as = random_coeffs(p, 8);
  const std::vector<double> ys{1.0, 2.0};
  const auto t1 =
      exec::run_on_threads_instrumented(polyeval_1(as), polyeval_input(p, ys));
  const auto t3 =
      exec::run_on_threads_instrumented(polyeval_3(as), polyeval_input(p, ys));
  EXPECT_LT(t3.traffic.messages, t1.traffic.messages);
}

TEST(Fusion, FusesAdjacentLocalStages) {
  Program p;
  p.map({"inc", [](const Value& v) { return Value(v.as_int() + 1); }, 1})
      .map({"dbl", [](const Value& v) { return Value(2 * v.as_int()); }, 1})
      .scan(ir::op_add())
      .map({"dec", [](const Value& v) { return Value(v.as_int() - 1); }, 1})
      .map_indexed({"addk",
                    [](int k, const Value& v) { return Value(v.as_int() + k); },
                    1});
  const Program fused = rules::fuse_local_stages(p);
  EXPECT_EQ(fused.size(), 3u);  // (inc;dbl) ; scan ; (dec;addk)
  const ir::Dist in = ir::dist_of_ints({1, 2, 3, 4, 5});
  EXPECT_EQ(p.eval_reference(in), fused.eval_reference(in));
}

TEST(Fusion, PreservesCostModelTotals) {
  Program p;
  p.map({"a", [](const Value& v) { return v; }, 2})
      .map({"b", [](const Value& v) { return v; }, 3});
  const Program fused = rules::fuse_local_stages(p);
  ASSERT_EQ(fused.size(), 1u);
  const auto& fn = static_cast<const ir::MapStage&>(fused.stage(0)).fn;
  EXPECT_DOUBLE_EQ(fn.ops_cost, 5.0);
}

TEST(Fusion, FusesIndexedWithIndexed) {
  Program p;
  p.map_indexed({"f", [](int k, const Value& v) { return Value(v.as_int() + k); }, 0, 2})
      .map_indexed({"g", [](int k, const Value& v) { return Value(v.as_int() * (k + 1)); }, 0, 3});
  const Program fused = rules::fuse_local_stages(p);
  ASSERT_EQ(fused.size(), 1u);
  const auto& fn = static_cast<const ir::MapIndexedStage&>(fused.stage(0)).fn;
  EXPECT_DOUBLE_EQ(fn.ops_per_logp, 5.0);
  const ir::Dist in = ir::dist_of_ints({3, 3, 3});
  EXPECT_EQ(p.eval_reference(in), fused.eval_reference(in));
}

TEST(Fusion, LeavesCollectiveBoundariesAlone) {
  Program p;
  p.scan(ir::op_add()).reduce(ir::op_add());
  EXPECT_EQ(rules::fuse_local_stages(p).size(), 2u);
}

TEST(PaperFigure6, ComcastValuesOnSixProcessors) {
  // Figure 6: b = 2, + ; processor k ends with 2*(k+1).
  Program prog;
  prog.bcast().scan(ir::op_add());
  const Program rewritten = rules::rule_bs_comcast()->match(prog, 0)->apply(prog);
  ir::Dist in(6, ir::Block{Value(0)});
  in[0][0] = Value(2);
  const auto out = rewritten.eval_reference(in);
  for (int k = 0; k < 6; ++k)
    EXPECT_EQ(out[static_cast<std::size_t>(k)][0].as_int(), 2 * (k + 1));
}

}  // namespace
}  // namespace colop::apps
