// Failure injection: exceptions thrown inside operators mid-collective,
// misuse of the API, and abort propagation under load.  A failing rank
// must never deadlock the group, and the original error must surface.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

#include "colop/exec/thread_executor.h"
#include "colop/ir/ir.h"
#include "colop/mpsim/mpsim.h"

namespace colop::mpsim {
namespace {

using i64 = std::int64_t;

TEST(FailureInjection, OpThrowsMidScan) {
  // The operator explodes on one rank during the butterfly; every other
  // rank is blocked in sendrecv and must be released.
  for (int p : {2, 4, 7, 8}) {
    try {
      run_spmd(p, [&](Comm& comm) {
        (void)scan(comm, static_cast<i64>(comm.rank()),
                   [&](i64 a, i64 b) -> i64 {
                     if (comm.rank() == p / 2) throw Error("op exploded");
                     return a + b;
                   });
      });
      FAIL() << "expected throw, p=" << p;
    } catch (const Error& e) {
      EXPECT_STREQ(e.what(), "op exploded") << "p=" << p;
    }
  }
}

TEST(FailureInjection, OpThrowsMidAllreduce) {
  try {
    run_spmd(6, [](Comm& comm) {
      (void)allreduce(comm, static_cast<i64>(comm.rank()),
                      [&](i64 a, i64 b) -> i64 {
                        if (comm.rank() == 4) throw Error("allreduce op died");
                        return a + b;
                      });
    });
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "allreduce op died");
  }
}

TEST(FailureInjection, OpThrowsMidBalancedReduce) {
  try {
    run_spmd(6, [](Comm& comm) {
      (void)reduce_balanced(
          comm, std::make_pair<i64, i64>(1, 1),
          [&](std::pair<i64, i64> a, std::pair<i64, i64> b) -> std::pair<i64, i64> {
            if (comm.rank() == 0) throw Error("balanced op died");
            return {a.first + b.first, a.second + b.second};
          },
          [](std::pair<i64, i64> x) { return x; });
    });
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "balanced op died");
  }
}

TEST(FailureInjection, ElemFnThrowsInsideProgramExecution) {
  ir::Program prog;
  prog.scan(ir::op_add())
      .map({"boom",
            [](const ir::Value& v) -> ir::Value {
              if (v.as_int() > 100) throw Error("map stage failed");
              return v;
            },
            1})
      .allreduce(ir::op_add());
  ir::Dist in = ir::dist_of_ints({50, 60, 70, 80});  // prefix exceeds 100
  EXPECT_THROW((void)exec::run_on_threads(prog, in), Error);
}

TEST(FailureInjection, LateJoinersUnblockWhenEarlyRankFails) {
  // Rank 0 dies before even entering the collective the others sit in.
  try {
    run_spmd(5, [](Comm& comm) {
      if (comm.rank() == 0) throw Error("rank 0 died early");
      (void)allreduce(comm, 1, [](int a, int b) { return a + b; });
    });
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "rank 0 died early");
  }
}

TEST(FailureInjection, AbortDuringLongPipelines) {
  // Many back-to-back collectives in flight when one rank fails midway.
  std::atomic<int> rounds_completed{0};
  try {
    run_spmd(4, [&](Comm& comm) {
      i64 v = comm.rank();
      for (int round = 0; round < 50; ++round) {
        if (round == 25 && comm.rank() == 2) throw Error("mid-pipeline");
        v = scan(comm, v, [](i64 a, i64 b) { return a + b; });
        rounds_completed.fetch_add(1);
      }
    });
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "mid-pipeline");
  }
  EXPECT_GT(rounds_completed.load(), 4 * 10);
}

TEST(FailureInjection, InvalidRanksAreRejected) {
  run_spmd(3, [](Comm& comm) {
    EXPECT_THROW(comm.send(7, 1), Error);
    EXPECT_THROW(comm.send(-1, 1), Error);
    EXPECT_THROW((void)comm.probe(3), Error);
    if (comm.rank() == 0) {
      EXPECT_THROW((void)bcast(comm, 1, /*root=*/5), Error);
    }
  });
}

TEST(FailureInjection, ScatterWrongBlockCountAbortsEveryone) {
  // Root passes too few blocks; the others are blocked in recv.
  EXPECT_THROW(run_spmd(5,
                        [](Comm& comm) {
                          std::vector<int> blocks;
                          if (comm.rank() == 0) blocks.assign(3, 1);  // needs 5
                          (void)scatter(comm, std::move(blocks));
                        }),
               Error);
}

TEST(FailureInjection, GroupStaysUsableAfterIndependentRuns) {
  // A failed SPMD run must not poison subsequent runs (fresh groups).
  EXPECT_THROW(run_spmd(3, [](Comm&) { throw Error("once"); }), Error);
  auto out = mpsim::run_spmd_collect<int>(3, [](Comm& comm) {
    return allreduce(comm, comm.rank(), [](int a, int b) { return a + b; });
  });
  EXPECT_EQ(out[0], 3);
}

}  // namespace
}  // namespace colop::mpsim
