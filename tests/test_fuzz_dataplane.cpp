// Differential fuzzing of the flat data plane: random programs x operator
// families x processor counts x block sizes, asserting that the packed
// plane is bit-for-bit the boxed plane — same outputs (int vs real
// distinction, double bit patterns, undefined propagation), same wire
// traffic (message and byte counts) — on the reference evaluator and on
// the mpsim thread executor alike.

#include <gtest/gtest.h>

#include <vector>

#include "colop/exec/thread_executor.h"
#include "colop/ir/packed_eval.h"
#include "colop/rules/derived_ops.h"
#include "colop/rules/rules.h"
#include "colop/support/rng.h"

namespace colop::ir {
namespace {

// Random distributed list: p blocks of m elements.  kind 0 = int, 1 = real.
Dist random_input(Rng& rng, int p, int m, int kind, double undef_prob) {
  Dist input;
  for (int r = 0; r < p; ++r) {
    Block blk;
    for (int j = 0; j < m; ++j) {
      if (rng.uniform01() < undef_prob) {
        blk.push_back(Value::undefined());
      } else if (kind == 0) {
        blk.push_back(Value(rng.uniform(-40, 40)));
      } else {
        blk.push_back(Value(static_cast<double>(rng.uniform(-400, 400)) / 16));
      }
    }
    input.push_back(std::move(blk));
  }
  return input;
}

// Both planes, reference and threads; asserts bitwise equality everywhere.
// With require_packable, a silent boxed fallback is itself a bug — the
// caller promises every stage has a kernel (rule-RHS programs with iter at
// non-power-of-two p legitimately stay boxed and only check the fallback).
void differential(const Program& prog, const Dist& input,
                  bool require_packable = true) {
  SCOPED_TRACE(prog.show());
  const Dist ref = eval_reference_boxed(prog, input);
  EXPECT_EQ(prog.eval_reference(input), ref);  // Auto routing

  if (!try_pack_for(prog, input).has_value()) {
    EXPECT_FALSE(require_packable) << "expected packable: " << prog.show();
    const auto fallback = exec::run_on_threads_instrumented(prog, input);
    EXPECT_FALSE(fallback.used_packed);
    EXPECT_EQ(fallback.output, ref);
    return;
  }
  const auto boxed =
      exec::run_on_threads_instrumented(prog, input, DataPlane::Boxed);
  const auto packed =
      exec::run_on_threads_instrumented(prog, input, DataPlane::Packed);
  EXPECT_TRUE(packed.used_packed);
  EXPECT_EQ(packed.output, boxed.output);
  EXPECT_EQ(packed.traffic.messages, boxed.traffic.messages);
  EXPECT_EQ(packed.traffic.bytes, boxed.traffic.bytes);
}

std::vector<BinOpPtr> int_ops() {
  return {op_add(),       op_mul(),       op_max(),  op_min(), op_band(),
          op_bor(),       op_gcd(),       op_modadd(97),
          op_modmul(97),  op_first()};
}

std::vector<BinOpPtr> real_ops() {
  return {op_add(), op_mul(), op_max(), op_min(),
          op_fadd(), op_fmul(), op_first()};
}

constexpr int kProcCounts[] = {1, 2, 3, 4, 5, 7, 8};
constexpr int kBlockSizes[] = {1, 3, 8};

TEST(FuzzDataPlane, RandomScalarPrograms) {
  Rng rng(20260807);
  for (int trial = 0; trial < 120; ++trial) {
    const int p = kProcCounts[rng.uniform(0, 6)];
    const int m = kBlockSizes[rng.uniform(0, 2)];
    const int kind = static_cast<int>(rng.uniform(0, 1));
    const auto ops = kind == 0 ? int_ops() : real_ops();
    const auto pick = [&] {
      return ops[static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(ops.size()) - 1))];
    };

    Program prog;
    const int len = static_cast<int>(rng.uniform(1, 4));
    for (int i = 0; i < len; ++i) {
      switch (rng.uniform(0, 5)) {
        case 0: prog.scan(pick()); break;
        case 1: prog.reduce(pick(), static_cast<int>(rng.uniform(0, p - 1)));
          break;
        case 2: prog.allreduce(pick()); break;
        case 3: prog.bcast(static_cast<int>(rng.uniform(0, p - 1))); break;
        case 4: prog.map_indexed(rules::make_op_comp_bs(pick())); break;
        default: prog.map(fn_id()); break;
      }
    }
    differential(prog, random_input(rng, p, m, kind, 0.1));
  }
}

TEST(FuzzDataPlane, UndefinedHeavyInputs) {
  // Whole blocks of `_`, sparse defined islands, non-power-of-two p: the
  // undefined-propagation rules of the gated operators must coincide.
  Rng rng(715);
  for (int trial = 0; trial < 60; ++trial) {
    const int p = kProcCounts[rng.uniform(0, 6)];
    const int m = kBlockSizes[rng.uniform(0, 2)];
    const int kind = static_cast<int>(rng.uniform(0, 1));
    const auto ops = kind == 0 ? int_ops() : real_ops();
    const auto op = ops[static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(ops.size()) - 1))];

    Program prog;
    prog.scan(op).allreduce(op);
    differential(prog, random_input(rng, p, m, kind, 0.7));
  }
}

// The paper's Table 1 programs (LHS) and every rule application (RHS),
// on both operator families, across processor counts: the workloads the
// flat plane exists to accelerate must be plane-independent.
TEST(FuzzDataPlane, Table1RulesLhsAndRhs) {
  Rng rng(42);
  const auto rules_list = rules::all_rules();
  for (const bool real_family : {false, true}) {
    const BinOpPtr add = real_family ? op_fadd() : op_add();
    const BinOpPtr mul = real_family ? op_fmul() : op_mul();
    std::vector<Program> lhss;
    {
      Program a; a.scan(mul).reduce(add); lhss.push_back(a);
      Program b; b.scan(add).reduce(add); lhss.push_back(b);
      Program c; c.scan(mul).scan(add); lhss.push_back(c);
      Program d; d.scan(add).scan(add); lhss.push_back(d);
      Program e; e.bcast().scan(add); lhss.push_back(e);
      Program f; f.bcast().scan(mul).scan(add); lhss.push_back(f);
      Program g; g.bcast().scan(add).scan(add); lhss.push_back(g);
      Program h; h.bcast().reduce(add); lhss.push_back(h);
      Program i; i.bcast().scan(mul).reduce(add); lhss.push_back(i);
      Program j; j.bcast().scan(add).reduce(add); lhss.push_back(j);
      Program k; k.bcast().allreduce(add); lhss.push_back(k);
      Program l; l.scan(add).allreduce(add); lhss.push_back(l);
      Program n; n.reduce(add).bcast(); lhss.push_back(n);
    }
    for (const Program& lhs : lhss) {
      std::vector<Program> variants{lhs};
      for (const auto& rule : rules_list)
        for (const auto& match : rule->matches(lhs))
          variants.push_back(match.apply(lhs));
      for (const Program& prog : variants) {
        for (const int p : {1, 2, 3, 4, 5, 7, 8}) {
          const int m = kBlockSizes[rng.uniform(0, 2)];
          // Local-rule RHS (iter) is packable only at powers of two.
          differential(prog, random_input(rng, p, m, real_family ? 1 : 0, 0.0),
                       /*require_packable=*/false);
        }
      }
    }
  }
}

TEST(FuzzDataPlane, SerializationFuzz) {
  // Random blocks through the wire format: to_bytes/from_bytes must be
  // the identity on the canonical form.
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const int m = static_cast<int>(rng.uniform(0, 70));
    const int arity = static_cast<int>(rng.uniform(0, 3));
    Block blk;
    for (int j = 0; j < m; ++j) {
      if (rng.uniform01() < 0.25) {
        blk.push_back(Value::undefined());
        continue;
      }
      if (arity == 0) {
        if (rng.uniform01() < 0.5)
          blk.push_back(Value(rng.uniform(-1000, 1000)));
        else
          blk.push_back(Value(rng.uniform01()));
      } else {
        Tuple t;
        for (int c = 0; c < arity; ++c)
          t.push_back(rng.uniform01() < 0.2 ? Value::undefined()
                                            : Value(rng.uniform(-50, 50)));
        blk.push_back(Value(std::move(t)));
      }
    }
    const auto packed = PackedBlock::pack(blk);
    if (!packed) continue;  // mixed lanes (int vs real in one lane)
    ASSERT_EQ(packed->unpack(), blk);
    const auto bytes = packed->to_bytes();
    EXPECT_EQ(PackedBlock::from_bytes(bytes.data(), bytes.size()), *packed);
  }
}

}  // namespace
}  // namespace colop::ir
