// colop::verify: the algebraic property checker catches every class of
// mis-declaration (and stays quiet on the honest registry), the schedule
// analyzer enforces distribution-state contracts with provenance, and the
// certificate replay discharges all seventeen rules' obligations while
// rejecting forged derivations.

#include <gtest/gtest.h>

#include <algorithm>

#include "colop/ir/ir.h"
#include "colop/model/machine.h"
#include "colop/rules/derived_ops.h"
#include "colop/rules/optimizer.h"
#include "colop/rules/rules.h"
#include "colop/verify/verify.h"

namespace colop::verify {
namespace {

using ir::BinOp;
using ir::BinOpPtr;
using ir::Program;
using ir::Value;

std::size_t count_code(const Report& r, const std::string& code) {
  return static_cast<std::size_t>(
      std::count_if(r.diagnostics().begin(), r.diagnostics().end(),
                    [&](const Diagnostic& d) { return d.code == code; }));
}

bool has_code(const Report& r, const std::string& code) {
  return count_code(r, code) > 0;
}

/// Fast checker options for the negative tests (counterexamples are found
/// in the exhaustive sweep; random tails only need to not take forever).
PropertyCheckOptions fast() {
  PropertyCheckOptions o;
  o.random_trials = 50;
  return o;
}

Value sub(const Value& a, const Value& b) {
  return Value(a.as_int() - b.as_int());
}

// --- analysis 1: algebraic property checker ------------------------------

TEST(PropertyChecker, StandardRegistryIsCleanIncludingLints) {
  PropertyCheckOptions opts;
  opts.lint_undeclared = true;  // a lint here = a fusion the registry misses
  const Report r = check_registry(opts);
  EXPECT_TRUE(r.empty()) << r.render_text();
}

TEST(PropertyChecker, CatchesFakeAssociativity) {
  const auto op = BinOp::make({.name = "sub", .fn = sub,
                               .associative = true, .commutative = false});
  const Report r = check_binop(op, {}, fast());
  EXPECT_TRUE(has_code(r, "V101")) << r.render_text();
  EXPECT_FALSE(r.ok());
}

TEST(PropertyChecker, CatchesFakeCommutativity) {
  const auto op = BinOp::make({.name = "sub", .fn = sub,
                               .associative = false, .commutative = true});
  const Report r = check_binop(op, {}, fast());
  EXPECT_TRUE(has_code(r, "V102")) << r.render_text();
  EXPECT_FALSE(r.ok());
}

TEST(PropertyChecker, CatchesFakeDistributivity) {
  // max is associative and commutative but does NOT distribute over +.
  const auto op = BinOp::make(
      {.name = "fakemax",
       .fn = [](const Value& a, const Value& b) {
         return Value(std::max(a.as_int(), b.as_int()));
       },
       .associative = true,
       .commutative = true,
       .distributes_over = {"+"}});
  const Report r = check_binop(op, {ir::op_add()}, fast());
  EXPECT_TRUE(has_code(r, "V103")) << r.render_text();
}

TEST(PropertyChecker, CatchesWrongUnit) {
  const auto op = BinOp::make(
      {.name = "addish",
       .fn = [](const Value& a, const Value& b) {
         return Value(a.as_int() + b.as_int());
       },
       .associative = true,
       .commutative = true,
       .unit = Value(std::int64_t{1})});  // the unit of + is 0, not 1
  const Report r = check_binop(op, {}, fast());
  EXPECT_TRUE(has_code(r, "V104")) << r.render_text();
}

TEST(PropertyChecker, CatchesBrokenPackedKernel) {
  // Boxed fn computes max, the attached packed kernel computes +.
  const auto op = BinOp::make(
      {.name = "maxish",
       .fn = [](const Value& a, const Value& b) {
         return Value(std::max(a.as_int(), b.as_int()));
       },
       .associative = true,
       .commutative = true,
       .packed_fn = ir::op_add()->packed()});
  const Report r = check_binop(op, {}, fast());
  EXPECT_TRUE(has_code(r, "V105")) << r.render_text();
}

TEST(PropertyChecker, UnresolvablePartnerIsAWarningNotASilentPass) {
  const auto op = BinOp::make(
      {.name = "addish",
       .fn = [](const Value& a, const Value& b) {
         return Value(a.as_int() + b.as_int());
       },
       .associative = true,
       .commutative = true,
       .distributes_over = {"no-such-op"}});
  const Report r = check_binop(op, {}, fast());
  EXPECT_TRUE(has_code(r, "V106")) << r.render_text();
  EXPECT_TRUE(r.ok());  // warning, not error
}

TEST(PropertyChecker, UnknownCarrierDegradesToWarning) {
  // An operator over some carrier the verifier has no domain for must not
  // be blamed with bogus counterexamples — V107, properties unchecked.
  const auto op = BinOp::make(
      {.name = "weird",
       .fn = [](const Value& a, const Value& b) {
         return Value(a.as_tuple()[0].as_int() + b.as_tuple()[0].as_int());
       },
       .associative = true});
  const Report r = check_binop(op, {}, fast());
  EXPECT_TRUE(has_code(r, "V107")) << r.render_text();
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(has_code(r, "V101"));
}

TEST(PropertyChecker, LintsUndeclaredProperties) {
  PropertyCheckOptions opts = fast();
  opts.lint_undeclared = true;
  // + with nothing declared: associativity (V110), commutativity (V111)
  // and distributivity over max (V112) all hold but are invisible to the
  // optimizer.
  const auto op = BinOp::make(
      {.name = "quietadd",
       .fn = [](const Value& a, const Value& b) {
         return Value(a.as_int() + b.as_int());
       },
       .associative = false,
       .commutative = false});
  const Report r = check_binop(op, {ir::op_max()}, opts);
  EXPECT_TRUE(has_code(r, "V110")) << r.render_text();
  EXPECT_TRUE(has_code(r, "V111")) << r.render_text();
  EXPECT_TRUE(has_code(r, "V112")) << r.render_text();
  EXPECT_TRUE(r.ok());  // lints never fail the build

  opts.lint_undeclared = false;
  EXPECT_TRUE(check_binop(op, {ir::op_max()}, opts).empty());
}

TEST(PropertyChecker, DerivedPairOperatorGetsAPairDomain) {
  // op_sr2[f*,f+] consumes (s, r) pairs; the checker must probe it on
  // 2-tuples (and confirm the associativity SR2-Reduction relies on).
  const auto op = rules::make_op_sr2(ir::op_fmul(), ir::op_fadd());
  const ValueDomain dom = domain_for(*op);
  EXPECT_EQ(dom.name, "pair<real>");
  bool saw_tuple = false;
  for (const auto& v : dom.small) saw_tuple |= v.is_tuple();
  EXPECT_TRUE(saw_tuple);
  const Report r = check_binop(op, {}, fast());
  EXPECT_TRUE(r.ok()) << r.render_text();
  EXPECT_FALSE(has_code(r, "V107"));  // it IS checkable

  const auto int_op = rules::make_op_sr2(ir::op_mul(), ir::op_add());
  EXPECT_TRUE(check_binop(int_op, {}, fast()).ok());
}

// --- satellite: registry declarations pinned by regression -----------------

TEST(Registry, EveryOperatorDistributesOverFirst) {
  for (const auto& op : standard_registry())
    EXPECT_TRUE(op->distributes_over(*ir::op_first())) << op->name();
}

TEST(Registry, FirstDistributesExactlyOverIdempotents) {
  const auto first = ir::op_first();
  for (const char* name : {"max", "min", "band", "bor", "gcd", "first"}) {
    bool declared = false;
    for (const auto& op : standard_registry())
      if (op->name() == name) declared = first->distributes_over(*op);
    EXPECT_TRUE(declared) << name;
  }
  EXPECT_FALSE(first->distributes_over(*ir::op_add()));
  // ... and the checker agrees: first over + has a counterexample.
  const auto joint = joint_domain(*first, *ir::op_add());
  ASSERT_TRUE(joint.has_value());
  EXPECT_TRUE(
      find_distrib_counterexample(*first, *ir::op_add(), *joint, fast())
          .has_value());
}

TEST(Registry, CrossDomainTwinsDeclareDistributivity) {
  EXPECT_TRUE(ir::op_mul()->distributes_over(*ir::op_fadd()));
  EXPECT_TRUE(ir::op_fmul()->distributes_over(*ir::op_add()));
  EXPECT_TRUE(ir::op_add()->distributes_over(*ir::op_max()));
  EXPECT_TRUE(ir::op_fadd()->distributes_over(*ir::op_min()));
}

TEST(Registry, MulDistributesOverGcdOnTheNaturals) {
  EXPECT_TRUE(ir::op_mul()->distributes_over(*ir::op_gcd()));
  const auto joint = joint_domain(*ir::op_mul(), *ir::op_gcd());
  ASSERT_TRUE(joint.has_value());
  EXPECT_EQ(joint->name, "nonneg");
  EXPECT_FALSE(
      find_distrib_counterexample(*ir::op_mul(), *ir::op_gcd(), *joint, fast())
          .has_value());
}

TEST(Registry, GcdCanonicalizesNegativeOperands) {
  // The declarations above lean on gcd's canonical nonneg carrier: its
  // unit law `gcd(0, x) == x` only holds after canonicalization.
  EXPECT_EQ((*ir::op_gcd())(Value(std::int64_t{0}), Value(std::int64_t{-3})),
            Value(std::int64_t{3}));
}

// --- analysis 2: static schedule analyzer --------------------------------

TEST(ScheduleAnalyzer, CleanPipelineHasNoFindings) {
  Program prog;
  prog.scan(ir::op_mul()).reduce(ir::op_add()).bcast();
  ScheduleOptions opts;
  opts.lints = false;
  const Report r = analyze_schedule(prog, opts);
  EXPECT_TRUE(r.empty()) << r.render_text();
}

TEST(ScheduleAnalyzer, ScanAfterReduceConsumesUndefinedBlocks) {
  Program prog;
  prog.reduce(ir::op_add()).scan(ir::op_add());
  const Report r = analyze_schedule(prog);
  EXPECT_TRUE(has_code(r, "V201")) << r.render_text();
  EXPECT_EQ(r.exit_code(), 3);
}

TEST(ScheduleAnalyzer, BcastRootedWhereDataIsUndefined) {
  Program prog;  // reduce leaves the value on rank 2; bcast reads rank 0
  prog.reduce(ir::op_add(), 2).bcast(0);
  const Report r = analyze_schedule(prog);
  EXPECT_TRUE(has_code(r, "V202")) << r.render_text();
}

TEST(ScheduleAnalyzer, RootOutOfRange) {
  Program prog;
  prog.reduce(ir::op_add(), 99);
  ScheduleOptions opts;
  opts.p = 8;
  const Report r = analyze_schedule(prog, opts);
  EXPECT_TRUE(has_code(r, "V203")) << r.render_text();
}

TEST(ScheduleAnalyzer, IterNeedsPowerOfTwoWithoutGeneralFold) {
  Program prog;
  prog.iter(ir::fn_id());
  ScheduleOptions opts;
  opts.p = 6;
  EXPECT_TRUE(has_code(analyze_schedule(prog, opts), "V204"));
  opts.p = 8;
  EXPECT_FALSE(has_code(analyze_schedule(prog, opts), "V204"));
}

TEST(ScheduleAnalyzer, ShapeInconsistencyIsReported) {
  Program prog;  // scalar input into a words=3 scan
  prog.scan(ir::op_add(), 3);
  const Report r = analyze_schedule(prog);
  EXPECT_TRUE(has_code(r, "V205")) << r.render_text();
}

TEST(ScheduleAnalyzer, RedundantBcastOnReplicatedData) {
  Program prog;
  prog.bcast().bcast();
  const Report r = analyze_schedule(prog);
  EXPECT_TRUE(has_code(r, "V206")) << r.render_text();
  EXPECT_TRUE(r.ok());  // legal, just wasteful: warning
}

TEST(ScheduleAnalyzer, NonAssociativeOperatorInACollective) {
  const auto op = BinOp::make({.name = "sub", .fn = sub,
                               .associative = false});
  Program prog;
  prog.scan(op);
  const Report r = analyze_schedule(prog);
  EXPECT_TRUE(has_code(r, "V207")) << r.render_text();
  EXPECT_FALSE(r.ok());
}

TEST(ScheduleAnalyzer, PackedIneligibilityIsALint) {
  const auto boxed_only = BinOp::make(
      {.name = "slowmax",
       .fn = [](const Value& a, const Value& b) {
         return Value(std::max(a.as_int(), b.as_int()));
       },
       .associative = true,
       .commutative = true});  // no packed_fn
  Program prog;
  prog.scan(boxed_only);
  ScheduleOptions opts;
  opts.lints = true;
  const Report with = analyze_schedule(prog, opts);
  EXPECT_TRUE(has_code(with, "V208")) << with.render_text();
  EXPECT_TRUE(with.ok());
  opts.lints = false;
  EXPECT_FALSE(has_code(analyze_schedule(prog, opts), "V208"));
}

TEST(ScheduleAnalyzer, TracksDistributionStates) {
  Program prog;
  prog.scan(ir::op_add()).reduce(ir::op_add()).bcast();
  const auto states = distribution_states(prog);
  ASSERT_EQ(states.size(), 3u);
  EXPECT_EQ(states[0], DistState::varied());
  EXPECT_EQ(states[1], DistState::root_only(0));
  EXPECT_EQ(states[2], DistState::uniform());
}

TEST(ScheduleAnalyzer, DiagnosticsCarryRuleProvenance) {
  Program prog;
  prog.reduce(ir::op_add()).scan(ir::op_add());
  ScheduleOptions opts;
  opts.provenance = {"", "X-Rule"};  // stage 1 was produced by "X-Rule"
  const Report r = analyze_schedule(prog, opts);
  ASSERT_TRUE(has_code(r, "V201"));
  for (const auto& d : r.diagnostics()) {
    if (d.code != "V201") continue;
    EXPECT_EQ(d.provenance, "X-Rule");
    EXPECT_NE(d.render().find("[from X-Rule]"), std::string::npos)
        << d.render();
  }
}

// --- analysis 3: rewrite soundness certificates --------------------------

rules::RulePtr rule_named(const std::string& name) {
  for (const auto& r : rules::all_rules())
    if (r->name() == name) return r;
  return nullptr;
}

/// Build the one-step derivation log of `rule` matching `prog` and certify
/// it; the obligations of every honest rule must discharge.
void expect_discharges(const std::string& rule_name, const Program& prog) {
  const auto rule = rule_named(rule_name);
  ASSERT_NE(rule, nullptr) << rule_name;
  const auto ms = rule->matches(prog);
  ASSERT_FALSE(ms.empty()) << rule_name << " does not match " << prog.show();
  rules::AppliedRule ar;
  ar.rule = rule_name;
  ar.position = ms[0].first;
  ar.count = ms[0].count;
  ar.replaced_by = ms[0].replacement.size();
  ar.note = ms[0].note;
  const auto certs = certify_derivation(prog, {ar});
  EXPECT_TRUE(certs.ok()) << rule_name << ":\n"
                          << certs.report.render_text();
  ASSERT_EQ(certs.certificates.size(), 1u);
  EXPECT_TRUE(certs.certificates[0].discharged) << certs.render_text();
  EXPECT_FALSE(certs.certificates[0].side_condition.empty());
}

TEST(Certificates, AllSeventeenRulesDischarge) {
  const auto add = ir::op_add();
  const auto mul = ir::op_mul();
  using Build = std::function<void(Program&)>;
  const std::vector<std::pair<std::string, Build>> table = {
      {"SR2-Reduction", [&](Program& p) { p.scan(mul).reduce(add); }},
      {"SR-Reduction", [&](Program& p) { p.scan(add).reduce(add); }},
      {"SS2-Scan", [&](Program& p) { p.scan(mul).scan(add); }},
      {"SS-Scan", [&](Program& p) { p.scan(add).scan(add); }},
      {"BS-Comcast", [&](Program& p) { p.bcast().scan(add); }},
      {"BSS2-Comcast", [&](Program& p) { p.bcast().scan(mul).scan(add); }},
      {"BSS-Comcast", [&](Program& p) { p.bcast().scan(add).scan(add); }},
      {"BR-Local", [&](Program& p) { p.bcast().reduce(add); }},
      {"BSR2-Local", [&](Program& p) { p.bcast().scan(mul).reduce(add); }},
      {"BSR-Local", [&](Program& p) { p.bcast().scan(add).reduce(add); }},
      {"CR-Alllocal", [&](Program& p) { p.bcast().allreduce(add); }},
      {"BSR2-Alllocal",
       [&](Program& p) { p.bcast().scan(mul).allreduce(add); }},
      {"BSR-Alllocal",
       [&](Program& p) { p.bcast().scan(add).allreduce(add); }},
      {"RB-Allreduce", [&](Program& p) { p.reduce(add).bcast(); }},
      {"SB-Elim", [&](Program& p) { p.scan(add).bcast(); }},
      {"BB-Elim", [&](Program& p) { p.bcast().bcast(); }},
      {"MB-Swap", [&](Program& p) { p.map(ir::fn_id()).bcast(); }},
  };
  ASSERT_EQ(table.size(), rules::all_rules().size());
  for (const auto& [name, build] : table) {
    Program prog;
    build(prog);
    expect_discharges(name, prog);
  }
}

TEST(Certificates, FakeCommutativityIsCaught) {
  // Associative but non-commutative, falsely declared commutative: the
  // SR-Reduction guard is satisfied by the LIE, so the rule matches — the
  // certificate must re-establish the property and fail it.
  const auto left = BinOp::make(
      {.name = "left",
       .fn = [](const Value& a, const Value&) { return a; },
       .associative = true,
       .commutative = true});
  Program prog;
  prog.scan(left).reduce(left);
  const auto rule = rule_named("SR-Reduction");
  ASSERT_NE(rule, nullptr);
  const auto ms = rule->matches(prog);
  ASSERT_FALSE(ms.empty());  // the optimizer trusts declarations...
  rules::AppliedRule ar;
  ar.rule = "SR-Reduction";
  ar.position = ms[0].first;
  ar.count = ms[0].count;
  ar.replaced_by = ms[0].replacement.size();
  const auto certs = certify_derivation(prog, {ar});
  EXPECT_FALSE(certs.ok());  // ...the verifier does not
  EXPECT_TRUE(has_code(certs.report, "V301")) << certs.report.render_text();
  ASSERT_EQ(certs.certificates.size(), 1u);
  EXPECT_FALSE(certs.certificates[0].discharged);
}

TEST(Certificates, FakeDistributivityIsCaught) {
  const auto fakemax = BinOp::make(
      {.name = "fakemax",
       .fn = [](const Value& a, const Value& b) {
         return Value(std::max(a.as_int(), b.as_int()));
       },
       .associative = true,
       .commutative = true,
       .distributes_over = {"+"}});
  Program prog;
  prog.scan(fakemax).reduce(ir::op_add());
  const auto rule = rule_named("SR2-Reduction");
  ASSERT_NE(rule, nullptr);
  const auto ms = rule->matches(prog);
  ASSERT_FALSE(ms.empty());
  rules::AppliedRule ar;
  ar.rule = "SR2-Reduction";
  ar.position = ms[0].first;
  ar.count = ms[0].count;
  ar.replaced_by = ms[0].replacement.size();
  const auto certs = certify_derivation(prog, {ar});
  EXPECT_FALSE(certs.ok());
  EXPECT_TRUE(has_code(certs.report, "V301")) << certs.report.render_text();
}

TEST(Certificates, ForgedDerivationFailsReplay) {
  Program prog;
  prog.scan(ir::op_mul()).reduce(ir::op_add());
  rules::AppliedRule ar;
  ar.rule = "SR2-Reduction";
  ar.position = 5;  // no such window
  ar.count = 2;
  ar.replaced_by = 1;
  const auto certs = certify_derivation(prog, {ar});
  EXPECT_FALSE(certs.ok());
  EXPECT_TRUE(has_code(certs.report, "V303")) << certs.report.render_text();

  rules::AppliedRule unknown;
  unknown.rule = "No-Such-Rule";
  const auto certs2 = certify_derivation(prog, {unknown});
  EXPECT_TRUE(has_code(certs2.report, "V303"));
}

TEST(Certificates, SideConditionTableNamesTheGuards) {
  EXPECT_NE(side_condition_of("SR2-Reduction").find("distribut"),
            std::string::npos);
  EXPECT_NE(side_condition_of("SR-Reduction").find("commutativ"),
            std::string::npos);
  EXPECT_NE(side_condition_of("BS-Comcast").find("associativ"),
            std::string::npos);
  EXPECT_NE(side_condition_of("BB-Elim").find("structural"),
            std::string::npos);
}

// --- umbrella: verify_program --------------------------------------------

TEST(VerifyProgram, OptimizedDerivationComesBackCertified) {
  Program prog;
  prog.scan(ir::op_mul()).reduce(ir::op_add()).bcast();
  model::Machine machine;
  machine.p = 8;
  const rules::Optimizer optimizer(machine);
  const auto opt = optimizer.optimize(prog);
  ASSERT_FALSE(opt.log.empty());
  const auto res = verify_program(prog, &opt, {});
  EXPECT_TRUE(res.ok()) << res.render_text(true);
  EXPECT_EQ(res.exit_code(), 0);
  EXPECT_EQ(res.certificates.certificates.size(), opt.log.size());
  for (const auto& c : res.certificates.certificates)
    EXPECT_TRUE(c.discharged) << c.rule;
}

TEST(VerifyProgram, UnsoundScheduleExitsThree) {
  Program prog;
  prog.reduce(ir::op_add()).scan(ir::op_add());
  const auto res = verify_program(prog, nullptr, {});
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.exit_code(), 3);
  EXPECT_TRUE(has_code(res.report, "V201"));
  EXPECT_NE(res.render_text(false).find("UNSOUND"), std::string::npos);
}

}  // namespace
}  // namespace colop::verify
