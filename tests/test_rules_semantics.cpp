// THE core property of the paper: every optimization rule is a semantic
// equality.  For each rule we build the LHS program, let the rule rewrite
// it, and compare reference-evaluation results on random inputs — across
// many operator instances and processor counts (powers of two and not),
// with multi-element blocks.
//
// Rules whose equivalence is root_only (plain-reduce targets, Local rules)
// are compared on the root block; full rules on the entire distributed list.

#include <gtest/gtest.h>

#include <vector>

#include "colop/ir/ir.h"
#include "colop/rules/rules.h"
#include "colop/support/rng.h"

namespace colop::rules {
namespace {

using ir::BinOpPtr;
using ir::Dist;
using ir::Program;
using ir::Value;

constexpr std::size_t kBlock = 3;  // elements per processor
constexpr int kTrials = 4;

Dist random_dist(int p, std::int64_t lo, std::int64_t hi, Rng& rng) {
  Dist d(static_cast<std::size_t>(p));
  for (auto& block : d) {
    block.resize(kBlock);
    for (auto& v : block) v = Value(rng.uniform(lo, hi));
  }
  return d;
}

struct OpCase {
  BinOpPtr otimes;  // null for same-op rules
  BinOpPtr oplus;
  std::int64_t lo, hi;
  std::string label;
};

// Distributive pairs (x distributes over +).  Ranges avoid int64 overflow
// under repeated application (see mul: products explode, so tiny range).
std::vector<OpCase> distributive_cases() {
  return {
      {ir::op_mul(), ir::op_add(), -1, 1, "mul_over_add"},
      {ir::op_modmul(97), ir::op_modadd(97), 0, 96, "modmul_over_modadd"},
      {ir::op_add(), ir::op_max(), -50, 50, "add_over_max"},
      {ir::op_add(), ir::op_min(), -50, 50, "add_over_min"},
      {ir::op_max(), ir::op_min(), -50, 50, "max_over_min"},
      {ir::op_min(), ir::op_max(), -50, 50, "min_over_max"},
      {ir::op_band(), ir::op_bor(), 0, 255, "band_over_bor"},
      {ir::op_gcd(), ir::op_gcd(), 1, 360, "gcd_over_gcd"},
  };
}

// Commutative operators for the same-op rules.
std::vector<OpCase> commutative_cases() {
  return {
      {nullptr, ir::op_add(), -50, 50, "add"},
      {nullptr, ir::op_mul(), -1, 1, "mul_tiny"},
      {nullptr, ir::op_max(), -90, 90, "max"},
      {nullptr, ir::op_min(), -90, 90, "min"},
      {nullptr, ir::op_band(), 0, 255, "band"},
      {nullptr, ir::op_bor(), 0, 255, "bor"},
      {nullptr, ir::op_gcd(), 1, 600, "gcd"},
      {nullptr, ir::op_modadd(101), 0, 100, "modadd"},
  };
}

void expect_rule_equiv(const RulePtr& rule, const Program& lhs,
                       const OpCase& c, int p, std::uint64_t seed) {
  auto m = rule->match(lhs, 0);
  ASSERT_TRUE(m.has_value()) << rule->name() << " failed to match " << lhs.show()
                             << " [" << c.label << "]";
  const Program rhs = m->apply(lhs);
  Rng rng(seed);
  for (int t = 0; t < kTrials; ++t) {
    const Dist in = random_dist(p, c.lo, c.hi, rng);
    const Dist out_l = lhs.eval_reference(in);
    const Dist out_r = rhs.eval_reference(in);
    if (m->equivalence == Equivalence::full) {
      EXPECT_EQ(out_l, out_r) << rule->name() << " p=" << p << " [" << c.label
                              << "]\n  lhs=" << lhs.show()
                              << "\n  rhs=" << rhs.show();
    } else {
      const auto root = static_cast<std::size_t>(m->root);
      EXPECT_EQ(out_l[root], out_r[root])
          << rule->name() << " p=" << p << " [" << c.label
          << "] (root-only)\n  lhs=" << lhs.show() << "\n  rhs=" << rhs.show();
    }
  }
}

class RuleSemanticsP : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(ProcessorCounts, RuleSemanticsP,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 13,
                                           16, 17, 31, 32, 33),
                         [](const auto& pinfo) {
                           return "p" + std::to_string(pinfo.param);
                         });

TEST_P(RuleSemanticsP, Sr2ReductionIsSemanticEquality) {
  const int p = GetParam();
  for (const auto& c : distributive_cases()) {
    Program lhs;
    lhs.scan(c.otimes).reduce(c.oplus);
    expect_rule_equiv(rule_sr2_reduction(), lhs, c, p, 11);
  }
}

TEST_P(RuleSemanticsP, Sr2AllreductionIsSemanticEquality) {
  const int p = GetParam();
  for (const auto& c : distributive_cases()) {
    Program lhs;
    lhs.scan(c.otimes).allreduce(c.oplus);
    expect_rule_equiv(rule_sr2_reduction(), lhs, c, p, 12);
  }
}

TEST_P(RuleSemanticsP, Sr2ReductionToNonzeroRoot) {
  const int p = GetParam();
  const OpCase c{ir::op_modmul(97), ir::op_modadd(97), 0, 96, "mod"};
  Program lhs;
  lhs.scan(c.otimes).reduce(c.oplus, p - 1);
  expect_rule_equiv(rule_sr2_reduction(), lhs, c, p, 13);
}

TEST_P(RuleSemanticsP, SrReductionIsSemanticEquality) {
  const int p = GetParam();
  for (const auto& c : commutative_cases()) {
    Program lhs;
    lhs.scan(c.oplus).reduce(c.oplus);
    expect_rule_equiv(rule_sr_reduction(), lhs, c, p, 21);
  }
}

TEST_P(RuleSemanticsP, SrAllreductionIsSemanticEquality) {
  const int p = GetParam();
  for (const auto& c : commutative_cases()) {
    Program lhs;
    lhs.scan(c.oplus).allreduce(c.oplus);
    expect_rule_equiv(rule_sr_reduction(), lhs, c, p, 22);
  }
}

TEST_P(RuleSemanticsP, Ss2ScanIsSemanticEquality) {
  const int p = GetParam();
  for (const auto& c : distributive_cases()) {
    Program lhs;
    lhs.scan(c.otimes).scan(c.oplus);
    expect_rule_equiv(rule_ss2_scan(), lhs, c, p, 31);
  }
}

TEST_P(RuleSemanticsP, SsScanIsSemanticEquality) {
  const int p = GetParam();
  for (const auto& c : commutative_cases()) {
    Program lhs;
    lhs.scan(c.oplus).scan(c.oplus);
    expect_rule_equiv(rule_ss_scan(), lhs, c, p, 41);
  }
}

TEST_P(RuleSemanticsP, BsComcastIsSemanticEquality) {
  const int p = GetParam();
  for (const auto& c : commutative_cases()) {
    Program lhs;
    lhs.bcast().scan(c.oplus);
    expect_rule_equiv(rule_bs_comcast(), lhs, c, p, 51);
  }
}

TEST_P(RuleSemanticsP, BsComcastWorksForNonCommutativeOp) {
  // BS-Comcast has NO commutativity condition: check with 2x2 matrices.
  const int p = GetParam();
  Program lhs;
  lhs.bcast().scan(ir::op_mat2());
  auto m = rule_bs_comcast()->match(lhs, 0);
  ASSERT_TRUE(m.has_value());
  const Program rhs = m->apply(lhs);
  Rng rng(53);
  Dist in(static_cast<std::size_t>(p));
  for (auto& block : in) {
    ir::Tuple t;
    for (int i = 0; i < 4; ++i) t.emplace_back(rng.uniform(-2, 2));
    block = {Value(t)};
  }
  EXPECT_EQ(lhs.eval_reference(in), rhs.eval_reference(in));
}

TEST_P(RuleSemanticsP, BsComcastFromNonzeroRoot) {
  const int p = GetParam();
  const OpCase c{nullptr, ir::op_add(), -50, 50, "add"};
  Program lhs;
  lhs.bcast(p / 2).scan(c.oplus);
  expect_rule_equiv(rule_bs_comcast(), lhs, c, p, 54);
}

TEST_P(RuleSemanticsP, Bss2ComcastIsSemanticEquality) {
  const int p = GetParam();
  for (const auto& c : distributive_cases()) {
    Program lhs;
    lhs.bcast().scan(c.otimes).scan(c.oplus);
    expect_rule_equiv(rule_bss2_comcast(), lhs, c, p, 61);
  }
}

TEST_P(RuleSemanticsP, BssComcastIsSemanticEquality) {
  const int p = GetParam();
  for (const auto& c : commutative_cases()) {
    Program lhs;
    lhs.bcast().scan(c.oplus).scan(c.oplus);
    expect_rule_equiv(rule_bss_comcast(), lhs, c, p, 71);
  }
}

TEST_P(RuleSemanticsP, BrLocalIsRootEquality) {
  const int p = GetParam();
  for (const auto& c : commutative_cases()) {
    Program lhs;
    lhs.bcast().reduce(c.oplus);
    expect_rule_equiv(rule_br_local(), lhs, c, p, 81);
  }
}

TEST_P(RuleSemanticsP, BrLocalWorksForNonCommutativeOp) {
  // BR-Local also has no commutativity condition (only associativity).
  const int p = GetParam();
  Program lhs;
  lhs.bcast().reduce(ir::op_mat2());
  auto m = rule_br_local()->match(lhs, 0);
  ASSERT_TRUE(m.has_value());
  const Program rhs = m->apply(lhs);
  Rng rng(83);
  Dist in(static_cast<std::size_t>(p));
  for (auto& block : in) {
    ir::Tuple t;
    for (int i = 0; i < 4; ++i) t.emplace_back(rng.uniform(-1, 1));
    block = {Value(t)};
  }
  EXPECT_EQ(lhs.eval_reference(in)[0], rhs.eval_reference(in)[0]);
}

TEST_P(RuleSemanticsP, Bsr2LocalIsRootEquality) {
  const int p = GetParam();
  for (const auto& c : distributive_cases()) {
    Program lhs;
    lhs.bcast().scan(c.otimes).reduce(c.oplus);
    expect_rule_equiv(rule_bsr2_local(), lhs, c, p, 91);
  }
}

TEST_P(RuleSemanticsP, BsrLocalIsRootEquality) {
  const int p = GetParam();
  for (const auto& c : commutative_cases()) {
    Program lhs;
    lhs.bcast().scan(c.oplus).reduce(c.oplus);
    expect_rule_equiv(rule_bsr_local(), lhs, c, p, 101);
  }
}

TEST_P(RuleSemanticsP, CrAlllocalIsFullEquality) {
  const int p = GetParam();
  for (const auto& c : commutative_cases()) {
    Program lhs;
    lhs.bcast().allreduce(c.oplus);
    expect_rule_equiv(rule_cr_alllocal(), lhs, c, p, 111);
  }
}

TEST_P(RuleSemanticsP, Bsr2AlllocalIsFullEquality) {
  const int p = GetParam();
  for (const auto& c : distributive_cases()) {
    Program lhs;
    lhs.bcast().scan(c.otimes).allreduce(c.oplus);
    expect_rule_equiv(rule_bsr2_alllocal(), lhs, c, p, 121);
  }
}

TEST_P(RuleSemanticsP, BsrAlllocalIsFullEquality) {
  const int p = GetParam();
  for (const auto& c : commutative_cases()) {
    Program lhs;
    lhs.bcast().scan(c.oplus).allreduce(c.oplus);
    expect_rule_equiv(rule_bsr_alllocal(), lhs, c, p, 131);
  }
}

TEST_P(RuleSemanticsP, ChainedRewritesPreserveSemantics) {
  // Apply every admissible full-equivalence rewrite repeatedly and check
  // the final program still agrees with the original (stress composition).
  const int p = GetParam();
  Program prog;
  prog.bcast().scan(ir::op_modmul(97)).scan(ir::op_modadd(97));

  Program current = prog;
  for (const auto& rule : all_rules()) {
    if (auto m = rule->match(current, 0);
        m && m->equivalence == Equivalence::full) {
      current = m->apply(current);
      break;
    }
  }
  Rng rng(141);
  for (int t = 0; t < kTrials; ++t) {
    const Dist in = random_dist(p, 0, 96, rng);
    EXPECT_EQ(prog.eval_reference(in), current.eval_reference(in));
  }
}

}  // namespace
}  // namespace colop::rules
