// The cost-directed Optimizer: greedy and exhaustive strategies, machine-
// dependent decisions (the same program is rewritten differently on
// different machines), equivalence gating, and the paper's Example program.

#include <gtest/gtest.h>

#include "colop/exec/thread_executor.h"
#include "colop/ir/ir.h"
#include "colop/rules/optimizer.h"
#include "colop/support/rng.h"

namespace colop::rules {
namespace {

using ir::Program;
using model::Machine;

// The paper's running Example (Section 2.1):
//   map f ; scan(op1) ; reduce(op2) ; map g ; bcast
Program example_program() {
  Program p;
  p.map({"f", [](const ir::Value& v) { return ir::Value(v.as_int() + 1); }, 1})
      .scan(ir::op_mul())
      .reduce(ir::op_add())
      .map({"g", [](const ir::Value& v) { return ir::Value(2 * v.as_int()); }, 1})
      .bcast();
  return p;
}

TEST(Optimizer, AppliesSr2ReductionToExample) {
  // High start-up machine: SR2-Reduction is "always" profitable.
  const Machine mach{.p = 64, .m = 16, .ts = 500, .tw = 2};
  const Optimizer opt(mach);
  const auto res = opt.optimize(example_program());
  ASSERT_FALSE(res.log.empty());
  EXPECT_EQ(res.log[0].rule, "SR2-Reduction");
  EXPECT_LT(res.cost_final, res.cost_initial);
  EXPECT_GT(res.speedup(), 1.0);
  // Collectives: scan+reduce+bcast=3 -> reduce+bcast=2.
  EXPECT_EQ(res.program.collective_count(), 2u);
}

TEST(Optimizer, ReportMentionsRuleAndCosts) {
  const Machine mach{.p = 64, .m = 16, .ts = 500, .tw = 2};
  const auto res = Optimizer(mach).optimize(example_program());
  const std::string report = res.report();
  EXPECT_NE(report.find("SR2-Reduction"), std::string::npos);
  EXPECT_NE(report.find("initial cost"), std::string::npos);
  EXPECT_NE(report.find("final cost"), std::string::npos);
}

TEST(Optimizer, MachineParametersFlipSs2Decision) {
  // Section 4.2: SS2-Scan pays off iff ts > 2m.
  Program prog;
  prog.scan(ir::op_mul()).scan(ir::op_add());

  const Machine cheap_startup{.p = 64, .m = 1000, .ts = 10, .tw = 2};
  const auto res_no = Optimizer(cheap_startup).optimize(prog);
  EXPECT_TRUE(res_no.log.empty()) << "ts << 2m: keep two scans";

  const Machine dear_startup{.p = 64, .m = 10, .ts = 1000, .tw = 2};
  const auto res_yes = Optimizer(dear_startup).optimize(prog);
  ASSERT_EQ(res_yes.log.size(), 1u);
  EXPECT_EQ(res_yes.log[0].rule, "SS2-Scan");
}

TEST(Optimizer, PrefersCheapestOfOverlappingMatches) {
  // bcast ; scan(+) ; scan(+) admits BS-Comcast (prefix), SS-Scan (suffix)
  // and BSS-Comcast (whole window).  On a high-startup machine the triple
  // fusion wins because it removes two collective stages.
  Program prog;
  prog.bcast().scan(ir::op_add()).scan(ir::op_add());
  const Machine mach{.p = 64, .m = 4, .ts = 2000, .tw = 2};
  const auto res = Optimizer(mach).optimize(prog);
  ASSERT_FALSE(res.log.empty());
  EXPECT_EQ(res.log[0].rule, "BSS-Comcast");
  EXPECT_EQ(res.program.collective_count(), 1u);
}

TEST(Optimizer, GreedyReachesFixpoint) {
  const Machine mach{.p = 64, .m = 4, .ts = 2000, .tw = 2};
  const Optimizer opt(mach);
  const auto res = opt.optimize(example_program());
  // No admissible match can remain after a fixpoint.
  EXPECT_TRUE(opt.admissible_matches(res.program).empty());
}

TEST(Optimizer, RootOnlyGateRejectsUnmaskedMatches) {
  // scan ; reduce with NO masking continuation: under the strict option the
  // SR2 match must be rejected...
  Program bare;
  bare.scan(ir::op_mul()).reduce(ir::op_add());
  const Machine mach{.p = 64, .m = 4, .ts = 2000, .tw = 2};
  OptimizerOptions strict;
  strict.policy = EquivalencePolicy::strict;
  const auto res = Optimizer(mach, all_rules(), strict).optimize(bare);
  EXPECT_TRUE(res.log.empty());

  // ...but the paper's Example ends in map g ; bcast, which masks it.
  const auto res2 = Optimizer(mach, all_rules(), strict).optimize(example_program());
  ASSERT_FALSE(res2.log.empty());
  EXPECT_EQ(res2.log[0].rule, "SR2-Reduction");
}

TEST(Optimizer, CostImprovementGateCanBeDisabled) {
  Program prog;
  prog.scan(ir::op_mul()).scan(ir::op_add());
  const Machine mach{.p = 64, .m = 1000, .ts = 10, .tw = 2};  // ts << 2m
  OptimizerOptions uncond;
  uncond.require_cost_improvement = false;
  // optimize() still refuses (it picks only strictly improving steps), but
  // the matches are now admissible.
  const Optimizer opt(mach, all_rules(), uncond);
  EXPECT_FALSE(opt.admissible_matches(prog).empty());
}

TEST(Optimizer, ExhaustiveNeverWorseThanGreedy) {
  const std::vector<Machine> machines = {
      {.p = 64, .m = 16, .ts = 500, .tw = 2},
      {.p = 8, .m = 1000, .ts = 10, .tw = 1},
      {.p = 16, .m = 1, .ts = 10000, .tw = 4},
  };
  std::vector<Program> programs;
  programs.push_back(example_program());
  {
    Program p;
    p.bcast().scan(ir::op_add()).scan(ir::op_add());
    programs.push_back(p);
  }
  {
    Program p;
    p.bcast().scan(ir::op_mul()).reduce(ir::op_add());
    programs.push_back(p);
  }
  for (const auto& mach : machines) {
    for (const auto& prog : programs) {
      const auto greedy = Optimizer(mach).optimize(prog);
      const auto best = Optimizer(mach).optimize_exhaustive(prog);
      EXPECT_LE(best.cost_final, greedy.cost_final)
          << prog.show() << " p=" << mach.p;
    }
  }
}

TEST(Optimizer, ExhaustiveFindsTripleFusionViaWorseIntermediate) {
  // bcast ; scan ; reduce: BSR2-Local consumes the whole window in one
  // step; exhaustive search must find it even when greedy already does.
  Program prog;
  prog.bcast().scan(ir::op_mul()).reduce(ir::op_add());
  const Machine mach{.p = 64, .m = 8, .ts = 800, .tw = 2};
  const auto best = Optimizer(mach).optimize_exhaustive(prog);
  EXPECT_EQ(best.program.collective_count(), 0u);
}

TEST(Optimizer, OptimizedExampleStillComputesTheSameResult) {
  const Machine mach{.p = 6, .m = 2, .ts = 500, .tw = 2};
  const auto res = Optimizer(mach).optimize(example_program());
  ASSERT_FALSE(res.log.empty());

  Rng rng(77);
  ir::Dist in(6);
  for (auto& b : in) {
    b.resize(2);
    for (auto& v : b) v = ir::Value(rng.uniform(-1, 1));
  }
  // Example's final stage is a bcast, so even root_only rewrites preserve
  // the full observable output.
  EXPECT_EQ(example_program().eval_reference(in),
            res.program.eval_reference(in));
  EXPECT_EQ(exec::run_on_threads(example_program(), in),
            exec::run_on_threads(res.program, in));
}

TEST(Optimizer, ComposedProgramsExposeNewMatches) {
  // Section 2.1: composing Example with Next_Example (starting with a
  // scan) creates a bcast;scan seam for BS-Comcast.
  Program example = example_program();
  Program next;
  next.scan(ir::op_add());
  const Program whole = example.then(next);

  const Machine mach{.p = 64, .m = 16, .ts = 500, .tw = 2};
  const auto res = Optimizer(mach).optimize(whole);
  bool used_bs = false;
  for (const auto& a : res.log) used_bs |= (a.rule == "BS-Comcast");
  EXPECT_TRUE(used_bs) << res.report();
}

}  // namespace
}  // namespace colop::rules
