// The model-vs-measured drift report: closed forms (15)-(17) must agree
// with the simnet discrete-event measurement at every power of two, the
// predicted traffic (counting twins of the schedules) must match the
// simulated message/word totals at EVERY p, and the JSON export parses.

#include <gtest/gtest.h>

#include <sstream>

#include "colop/apps/polyeval.h"
#include "colop/ir/parse.h"
#include "colop/obs/drift.h"
#include "colop/obs/json.h"

namespace colop::obs {
namespace {

const model::Machine kMach{.p = 64, .m = 64, .ts = 400, .tw = 2};

TEST(Drift, ModelAgreesWithSimnetAtPowersOfTwo) {
  for (const char* text :
       {"bcast", "scan(+)", "reduce(+)", "allreduce(+)",
        "bcast ; scan(*) ; reduce(+)", "reduce(+) ; bcast"}) {
    const auto prog = ir::parse_program(text);
    const auto rep = drift_report(prog, kMach);
    EXPECT_EQ(rep.rows.size(), 6u) << text;  // p in {2,4,...,64}
    EXPECT_TRUE(rep.all_ok()) << text << "\n" << rep.render_text();
  }
}

TEST(Drift, PolyEvalDerivationStaysWithinToleranceAtPowersOfTwo) {
  std::vector<double> as(64);
  for (std::size_t i = 0; i < as.size(); ++i)
    as[i] = static_cast<double>(i + 1);
  for (const auto& prog : {apps::polyeval_1(as), apps::polyeval_3(as)}) {
    const auto rep = drift_report(prog, kMach);
    EXPECT_TRUE(rep.all_ok()) << prog.show() << "\n" << rep.render_text();
  }
}

TEST(Drift, PredictedTrafficMatchesMeasurementAtEveryP) {
  // Off powers of two the time drifts (the model is log2-exact only at
  // 2^k), but the traffic prediction mirrors the schedule loops and must
  // match the simulation exactly for every p.
  DriftOptions opts;
  opts.procs = {2, 3, 5, 6, 7, 9, 12, 16, 24, 33};
  for (const char* text :
       {"bcast ; allreduce(+)", "scan(+) ; reduce(*)", "bcast ; scan(+)"}) {
    const auto prog = ir::parse_program(text);
    const auto rep = drift_report(prog, kMach, opts);
    ASSERT_EQ(rep.rows.size(), opts.procs.size()) << text;
    for (const auto& row : rep.rows) {
      EXPECT_EQ(row.predicted_messages, row.sim_messages)
          << text << " p=" << row.p;
      EXPECT_DOUBLE_EQ(row.predicted_words, row.sim_words)
          << text << " p=" << row.p;
    }
  }
}

TEST(Drift, PredictedTrafficClosedFormsOnOneStage) {
  // Butterfly schedules at p = 16: log2 p = 4 phases, every rank sends
  // once per phase, m words per message.
  model::Machine mach = kMach;
  mach.p = 16;
  const double m = mach.m;
  const auto bcast = predicted_traffic(ir::parse_program("bcast"), mach);
  EXPECT_EQ(bcast.messages, 64u);  // p*log2(p), default butterfly
  EXPECT_DOUBLE_EQ(bcast.words, 64 * m);
  const auto scan = predicted_traffic(ir::parse_program("scan(+)"), mach);
  EXPECT_EQ(scan.messages, 64u);
  const auto local = predicted_traffic(ir::parse_program("map(pair)"), mach);
  EXPECT_EQ(local.messages, 0u);
  EXPECT_DOUBLE_EQ(local.words, 0.0);

  exec::SimSchedules binomial;
  binomial.bcast = exec::SimSchedules::Bcast::binomial;
  binomial.reduce = exec::SimSchedules::Reduce::binomial;
  const auto btree =
      predicted_traffic(ir::parse_program("bcast"), mach, binomial);
  EXPECT_EQ(btree.messages, 15u);  // binomial tree: p-1
  const auto rtree =
      predicted_traffic(ir::parse_program("reduce(+)"), mach, binomial);
  EXPECT_EQ(rtree.messages, 15u);
}

TEST(Drift, ReportFlagsDivergenceBeyondTolerance) {
  // An unsatisfiable (negative) tolerance must flag every row, proving
  // the ok/all_ok/DIVERGENCE path is live.
  DriftOptions opts;
  opts.procs = {4, 8};
  opts.tolerance = -1.0;
  const auto rep = drift_report(ir::parse_program("scan(+)"), kMach, opts);
  ASSERT_EQ(rep.rows.size(), 2u);
  EXPECT_FALSE(rep.rows[0].ok);
  EXPECT_FALSE(rep.all_ok());
  EXPECT_NE(rep.render_text().find("DIVERGENCE"), std::string::npos);
}

TEST(Drift, JsonExportParsesAndMirrorsTheRows) {
  const auto rep = drift_report(ir::parse_program("allreduce(+)"), kMach);
  std::ostringstream os;
  rep.write_json(os);
  const auto doc = json::parse(os.str());
  ASSERT_NE(doc.get("program"), nullptr);
  EXPECT_EQ(doc.get("program")->str, rep.program);
  ASSERT_NE(doc.get("all_ok"), nullptr);
  EXPECT_EQ(doc.get("all_ok")->b, rep.all_ok());
  const auto* rows = doc.get("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->items.size(), rep.rows.size());
  for (std::size_t i = 0; i < rows->items.size(); ++i) {
    const auto& item = *rows->items[i];
    ASSERT_NE(item.get("p"), nullptr);
    EXPECT_EQ(static_cast<int>(item.get("p")->num), rep.rows[i].p);
    ASSERT_NE(item.get("sim_messages"), nullptr);
    EXPECT_DOUBLE_EQ(item.get("sim_messages")->num,
                     static_cast<double>(rep.rows[i].sim_messages));
    ASSERT_NE(item.get("ok"), nullptr);
  }
}

}  // namespace
}  // namespace colop::obs
