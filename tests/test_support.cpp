// Unit tests for colop/support: bit helpers, RNG, table printer, errors.

#include <gtest/gtest.h>

#include <sstream>

#include "colop/support/bits.h"
#include "colop/support/error.h"
#include "colop/support/rng.h"
#include "colop/support/table.h"

namespace colop {
namespace {

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(4));
  EXPECT_FALSE(is_pow2(6));
  EXPECT_TRUE(is_pow2(1ULL << 62));
  EXPECT_FALSE(is_pow2((1ULL << 62) + 1));
}

TEST(Bits, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(4), 2u);
  EXPECT_EQ(log2_floor(63), 5u);
  EXPECT_EQ(log2_floor(64), 6u);
}

TEST(Bits, Log2Ceil) {
  EXPECT_EQ(log2_ceil(1), 0u);
  EXPECT_EQ(log2_ceil(2), 1u);
  EXPECT_EQ(log2_ceil(3), 2u);
  EXPECT_EQ(log2_ceil(4), 2u);
  EXPECT_EQ(log2_ceil(5), 3u);
  EXPECT_EQ(log2_ceil(6), 3u);  // paper's running example: 6 processors
  EXPECT_EQ(log2_ceil(64), 6u);
  EXPECT_EQ(log2_ceil(65), 7u);
}

TEST(Bits, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(6), 8u);
  EXPECT_EQ(next_pow2(64), 64u);
}

TEST(Bits, BinaryDigits) {
  // Digit count drives the iteration count of the paper's `repeat` schema.
  EXPECT_EQ(binary_digits(0), 0u);
  EXPECT_EQ(binary_digits(1), 1u);
  EXPECT_EQ(binary_digits(2), 2u);
  EXPECT_EQ(binary_digits(5), 3u);
  EXPECT_EQ(binary_digits(63), 6u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, UniformWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, Uniform01WithinBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, SplitStreamsDiffer) {
  Rng base(3);
  Rng a = base.split(0);
  Rng b = base.split(1);
  int differing = 0;
  for (int i = 0; i < 32; ++i)
    if (a() != b()) ++differing;
  EXPECT_GT(differing, 16);
}

TEST(Table, AlignsAndPrintsRows) {
  Table t("demo", {"a", "long-header", "c"});
  t.add(1, 2.5, "x");
  t.add(12345, 0.125, "yy");
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("12345"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t("", {"x", "y"});
  t.add(1, 2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, RejectsMismatchedRowWidth) {
  Table t("", {"x", "y"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(ErrorMacros, RequireThrows) {
  EXPECT_THROW(COLOP_REQUIRE(false, "boom"), Error);
  EXPECT_NO_THROW(COLOP_REQUIRE(true, "fine"));
}

TEST(ErrorMacros, AssertCarriesLocation) {
  try {
    COLOP_ASSERT(1 == 2, "math broke");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test_support.cpp"), std::string::npos);
    EXPECT_NE(what.find("math broke"), std::string::npos);
  }
}

}  // namespace
}  // namespace colop
