// Embedded stats server: pure routing (handle() needs no sockets), the
// /runs document, and one real loopback round trip — bind an ephemeral
// port, speak HTTP/1.0 over a raw socket, and check the Prometheus body.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "colop/obs/json.h"
#include "colop/obs/live.h"
#include "colop/obs/metrics.h"
#include "colop/obs/run_store.h"
#include "colop/obs/serve.h"

namespace obs = colop::obs;

namespace {

obs::Registry& demo_registry() {
  static obs::Registry reg;
  static const bool init = [] {
    reg.counter("colop_mpsim_messages_total", "messages", {{"rank", "0"}})
        .inc(5);
    reg.gauge("colop_verify_sound", "soundness").set(1);
    return true;
  }();
  (void)init;
  return reg;
}

TEST(Serve, RoutesWithoutSockets) {
  obs::StatsServer server(demo_registry());
  EXPECT_EQ(server.handle("GET", "/healthz").status, 200);
  EXPECT_EQ(server.handle("GET", "/healthz").body, "ok state=idle\n");

  const auto metrics = server.handle("GET", "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.content_type, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(metrics.body.find("colop_mpsim_messages_total{rank=\"0\"} 5"),
            std::string::npos);

  const auto mjson = server.handle("GET", "/metrics.json");
  EXPECT_EQ(mjson.status, 200);
  EXPECT_EQ(mjson.content_type, "application/json");
  EXPECT_NO_THROW(obs::json::parse(mjson.body));

  EXPECT_EQ(server.handle("GET", "/nope").status, 404);
  EXPECT_EQ(server.handle("POST", "/metrics").status, 405);
}

TEST(Serve, RunsDocumentMostRecentFirst) {
  obs::StatsServer server(demo_registry());
  obs::RunSummary a;
  a.trace_id = "aaaaaaaaaaaaaaaa";
  a.program = "scan(+)";
  obs::RunSummary b;
  b.trace_id = "bbbbbbbbbbbbbbbb";
  b.program = "bcast";
  b.rewrites = 2;
  b.wall_ms = 1.5;
  server.add_run(a);
  server.add_run(b);

  const auto resp = server.handle("GET", "/runs");
  EXPECT_EQ(resp.status, 200);
  const auto doc = obs::json::parse(resp.body);
  const auto* runs = doc.get("runs");
  ASSERT_TRUE(runs != nullptr);
  ASSERT_EQ(runs->items.size(), 2u);
  EXPECT_EQ(runs->items[0]->get("trace_id")->str, "bbbbbbbbbbbbbbbb");
  EXPECT_EQ(runs->items[0]->get("rewrites")->num, 2);
  EXPECT_EQ(runs->items[0]->get("wall_ms")->num, 1.5);
  EXPECT_EQ(runs->items[1]->get("trace_id")->str, "aaaaaaaaaaaaaaaa");
}

TEST(Serve, RunDetailEndpointServesArchivedManifest) {
  const std::filesystem::path root =
      std::filesystem::path(testing::TempDir()) / "serve_run_store";
  std::filesystem::remove_all(root);
  const obs::RunStore store(root.string());
  obs::RunBundle bundle;
  bundle.trace_id = "feedfacefeedface";
  bundle.timestamp = "2026-08-08 10:00:00";
  bundle.timestamp_ns = 42;
  bundle.machine = {8, 64, 400, 2};
  bundle.program_before = bundle.program_after = "scan(+)";
  store.save(bundle);

  obs::StatsServer server(demo_registry());

  // Without an attached store the endpoint 404s with a pointer to --record.
  const auto unattached = server.handle("GET", "/runs/feedfacefeedface");
  EXPECT_EQ(unattached.status, 404);
  EXPECT_NE(unattached.body.find("--record"), std::string::npos);

  server.set_run_store(root.string());
  const auto found = server.handle("GET", "/runs/feedfacefeedface");
  EXPECT_EQ(found.status, 200);
  EXPECT_EQ(found.content_type, "application/json");
  const auto doc = obs::json::parse(found.body);
  EXPECT_EQ(doc.get("kind")->str, "colop_run");
  EXPECT_EQ(doc.get("trace_id")->str, "feedfacefeedface");

  // Unknown id: 404 plus a listing hint naming the archived runs.
  const auto missing = server.handle("GET", "/runs/0123456789abcdef");
  EXPECT_EQ(missing.status, 404);
  EXPECT_NE(missing.body.find("feedfacefeedface"), std::string::npos)
      << missing.body;

  // Traversal-shaped ids never touch the filesystem.
  EXPECT_EQ(server.handle("GET", "/runs/../etc").status, 404);
}

TEST(Serve, UtcTimestampShape) {
  const std::string ts = obs::utc_timestamp();
  ASSERT_EQ(ts.size(), 19u);  // YYYY-mm-dd HH:MM:SS
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[10], ' ');
  EXPECT_EQ(ts[13], ':');
}

/// One HTTP/1.0 request against 127.0.0.1:`port`; returns the raw reply.
std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  ::send(fd, req.data(), req.size(), 0);
  std::string reply;
  char buf[1024];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0)
    reply.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return reply;
}

TEST(Serve, LoopbackRoundTrip) {
  obs::StatsServer server(demo_registry());
  std::string error;
  ASSERT_TRUE(server.start(0, &error)) << error;  // 0 = ephemeral port
  ASSERT_GT(server.port(), 0);

  const std::string health = http_get(server.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.0 200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("\r\n\r\nok state=idle\n"), std::string::npos) << health;

  const std::string metrics = http_get(server.port(), "/metrics?scrape=1");
  EXPECT_NE(metrics.find("# TYPE colop_mpsim_messages_total counter"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("colop_verify_sound 1"), std::string::npos);

  const std::string missing = http_get(server.port(), "/bogus");
  EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos) << missing;

  server.stop();  // idempotent with the destructor's stop()
}

TEST(Serve, LiveEndpointsFourOhFourWithoutSampler) {
  obs::StatsServer server(demo_registry());
  const auto live = server.handle("GET", "/live");
  EXPECT_EQ(live.status, 404);
  EXPECT_NE(live.body.find("--live"), std::string::npos);
  const auto live_json = server.handle("GET", "/live.json");
  EXPECT_EQ(live_json.status, 404);
  EXPECT_NE(live_json.body.find("--live"), std::string::npos);
}

TEST(Serve, LiveEndpointsServeSamplerSnapshots) {
  obs::LiveBus bus(4, 64);
  bus.set_enabled(true);
  obs::Registry reg;
  obs::LiveSampler sampler(bus, reg);
  obs::LiveRunInfo info;
  info.trace_id = "feedc0defeedc0de";
  info.program = "scan(+) ; bcast";
  info.stage_labels = {"scan(+)", "bcast"};
  info.ranks = 1;
  bus.begin_run(info);
  bus.publish(obs::LiveEv::stage_end, 0, 0, 1'000'000);
  sampler.sample_once();

  obs::StatsServer server(demo_registry());
  server.set_live(&sampler);

  // /healthz reflects the sampler's run state.
  EXPECT_EQ(server.handle("GET", "/healthz").body, "ok state=running\n");

  // /live.json: one parseable snapshot; since/wait_ms long-poll times out
  // to the current snapshot when nothing changes.
  const auto live_json = server.handle("GET", "/live.json");
  EXPECT_EQ(live_json.status, 200);
  EXPECT_EQ(live_json.content_type, "application/json");
  const auto doc = obs::json::parse(live_json.body);
  EXPECT_EQ(doc.get("trace_id")->str, "feedc0defeedc0de");
  EXPECT_EQ(doc.get("state")->str, "running");
  const std::uint64_t seq = static_cast<std::uint64_t>(doc.get("seq")->num);
  const auto polled = server.handle(
      "GET", "/live.json?since=" + std::to_string(seq) + "&wait_ms=30");
  EXPECT_EQ(polled.status, 200);
  EXPECT_NO_THROW(obs::json::parse(polled.body));

  // /live (socket-free fallback): one snapshot frame plus an end frame,
  // framed exactly as the SSE golden demands.
  const auto sse = server.handle("GET", "/live");
  EXPECT_EQ(sse.status, 200);
  EXPECT_EQ(sse.content_type, "text/event-stream");
  const obs::LiveSnapshot snap = sampler.snapshot();
  EXPECT_EQ(sse.body,
            obs::sse_frame(snap.seq, "snapshot", snap.to_json()) +
                obs::sse_frame(snap.seq, "end",
                               "{\"state\":\"" + snap.state + "\"}"));

  bus.end_run();
  sampler.sample_once();
  EXPECT_EQ(server.handle("GET", "/healthz").body, "ok state=idle\n");
}

TEST(Serve, RunsDocumentEmbedsLiveProgress) {
  obs::LiveBus bus(4, 64);
  bus.set_enabled(true);
  obs::Registry reg;
  obs::LiveSampler sampler(bus, reg);
  obs::LiveRunInfo info;
  info.trace_id = "beefbeefbeefbeef";
  info.stage_labels = {"bcast"};
  info.ranks = 1;
  bus.begin_run(info);
  bus.publish(obs::LiveEv::stage_end, 0, 0, 500'000);
  sampler.sample_once();

  obs::StatsServer server(demo_registry());
  server.set_live(&sampler);
  obs::RunSummary run;
  run.trace_id = "beefbeefbeefbeef";
  run.program = "bcast";
  run.state = "live";
  server.add_run(run);

  const auto resp = server.handle("GET", "/runs");
  const auto doc = obs::json::parse(resp.body);
  const auto* entry = doc.get("runs")->items[0].get();
  EXPECT_EQ(entry->get("state")->str, "live");
  const auto* live = entry->get("live");
  ASSERT_TRUE(live != nullptr);
  EXPECT_EQ(live->get("progress")->get("stages_done")->num, 1);

  // finish_run flips the state and drops the progress embedding.
  server.finish_run("beefbeefbeefbeef", 12.5);
  const auto after = obs::json::parse(server.handle("GET", "/runs").body);
  const auto* done = after.get("runs")->items[0].get();
  EXPECT_EQ(done->get("state")->str, "done");
  EXPECT_EQ(done->get("wall_ms")->num, 12.5);
  EXPECT_TRUE(done->get("live") == nullptr);
  bus.end_run();
}

/// Open a TCP connection that sends nothing — a stuck client.
int open_idle_connection(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Slow-client regression: clients that connect and never send a byte must
// not starve other requests.  Workers shed them via the receive timeout,
// so a normal scrape completes while eight of them sit idle.
TEST(Serve, SlowClientsCannotStarveTheServer) {
  obs::StatsServer server(demo_registry());
  server.set_io_timeout_ms(200);
  std::string error;
  ASSERT_TRUE(server.start(0, &error)) << error;

  std::vector<int> idle;
  for (int i = 0; i < 8; ++i) {
    const int fd = open_idle_connection(server.port());
    ASSERT_GE(fd, 0);
    idle.push_back(fd);
  }

  const std::string health = http_get(server.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.0 200 OK"), std::string::npos) << health;

  for (const int fd : idle) ::close(fd);
  server.stop();
}

}  // namespace
