// Split-phase collectives end to end: parse/show round-trips, the overlap
// window planner, the V22x nonblocking-contract analysis (PARCOACH's bug
// classes over straight-line SPMD programs), the Overlap-Split/Wait-Sink
// rewrite rules with their certificates, max(comm, local) window pricing in
// the cost model and simnet, and a differential fuzz pass showing the
// threaded executor computes bit-identical results for blocking and
// split-phase spellings of every Table-1 shape.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "colop/exec/sim_executor.h"
#include "colop/exec/thread_executor.h"
#include "colop/ir/ir.h"
#include "colop/ir/overlap.h"
#include "colop/ir/parse.h"
#include "colop/model/cost.h"
#include "colop/obs/profile.h"
#include "colop/rules/optimizer.h"
#include "colop/rules/rules.h"
#include "colop/support/rng.h"
#include "colop/verify/splitphase.h"
#include "colop/verify/verify.h"

namespace colop {
namespace {

using ir::Dist;
using ir::Program;
using ir::Value;

std::size_t count_code(const verify::Report& r, const std::string& code) {
  return static_cast<std::size_t>(std::count_if(
      r.diagnostics().begin(), r.diagnostics().end(),
      [&](const verify::Diagnostic& d) { return d.code == code; }));
}

bool has_code(const verify::Report& r, const std::string& code) {
  return count_code(r, code) > 0;
}

/// An elementwise function with real local work, so overlap windows have
/// something to hide under the collective.
ir::ElemFn fn_heavy(double ops = 50.0) {
  return {"id", [](const Value& v) { return v; }, ops, nullptr, {}};
}

Dist random_dist(int p, std::size_t block, std::uint64_t seed) {
  Rng rng(seed);
  Dist d(static_cast<std::size_t>(p));
  for (auto& b : d) {
    b.resize(block);
    for (auto& v : b) v = Value(rng.uniform(-50, 50));
  }
  return d;
}

// --- syntax --------------------------------------------------------------

TEST(SplitPhaseSyntax, ParseShowRoundTrips) {
  for (const char* text : {
           "istart_reduce(+,h=1) ; map(pair) ; wait(h=1)",
           "istart_reduce(+,root=2,h=3) ; wait(h=3)",
           "istart_allreduce(max,h=1) ; map(triple) ; wait(h=1)",
           "istart_bcast(root=1,h=2) ; wait(h=2)",
           "istart_bcast ; wait",
           "istart_allreduce(*) ; map(pair) ; map(pi1) ; wait",
       }) {
    EXPECT_EQ(ir::parse_program(text).show(), text);
  }
}

TEST(SplitPhaseSyntax, EvalReferenceMatchesBlockingTwin) {
  Program split;
  split.istart_allreduce(ir::op_add(), 1, 1).map(ir::fn_pair()).wait(1);
  Program blocking;
  blocking.allreduce(ir::op_add()).map(ir::fn_pair());
  const Dist in = ir::dist_of_ints({3, 1, 4, 1, 5});
  EXPECT_EQ(split.eval_reference(in), blocking.eval_reference(in));
}

// --- window planner ------------------------------------------------------

TEST(OverlapWindows, FindsIstartMapWaitSpans) {
  Program p;
  p.istart_bcast(0, 1, 1).map(ir::fn_pair()).map(ir::fn_proj1()).wait(1);
  const auto w = ir::overlap_windows(p);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].istart, 0u);
  EXPECT_EQ(w[0].wait, 3u);
  EXPECT_TRUE(ir::in_overlap_window(w, 0));
  EXPECT_TRUE(ir::in_overlap_window(w, 2));
  EXPECT_TRUE(ir::in_overlap_window(w, 3));
}

TEST(OverlapWindows, NonLocalInteriorBreaksTheWindow) {
  // A scan between istart and wait is not elementwise-local: the window is
  // ineligible (the executor falls back to the blocking twin; the verifier
  // separately flags the scan as a V222 hazard).
  Program p;
  p.istart_reduce(ir::op_add(), 0, 1, 1).scan(ir::op_add()).wait(1);
  EXPECT_TRUE(ir::overlap_windows(p).empty());
  EXPECT_FALSE(ir::in_overlap_window(ir::overlap_windows(p), 0));
}

TEST(OverlapWindows, HandlesMustMatch) {
  Program p;
  p.istart_reduce(ir::op_add(), 0, 1, 1).map(ir::fn_pair()).wait(2);
  EXPECT_TRUE(ir::overlap_windows(p).empty());
}

// --- the V22x contract analysis ------------------------------------------

TEST(SplitPhaseVerifier, WellFormedWindowIsClean) {
  Program p;
  p.istart_allreduce(ir::op_add(), 1, 1).map(ir::fn_pair()).wait(1);
  const auto r = verify::analyze_splitphase(p);
  EXPECT_TRUE(r.empty()) << r.render_text();
}

TEST(SplitPhaseVerifier, BlockingProgramsAreUntouched) {
  Program p;
  p.scan(ir::op_mul()).reduce(ir::op_add()).bcast();
  EXPECT_TRUE(verify::analyze_splitphase(p).empty());
}

TEST(SplitPhaseVerifier, V220UnmatchedIstart) {
  Program p;
  p.istart_reduce(ir::op_add(), 0, 1, 1).map(ir::fn_pair());
  const auto r = verify::analyze_splitphase(p);
  EXPECT_EQ(count_code(r, "V220"), 1u) << r.render_text();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.exit_code(), 3);
}

TEST(SplitPhaseVerifier, V221WaitWithoutIstart) {
  Program lone_wait;
  lone_wait.wait();
  EXPECT_EQ(count_code(verify::analyze_splitphase(lone_wait), "V221"), 1u);

  Program double_wait;
  double_wait.istart_bcast(0, 1, 1).wait(1).wait(1);
  const auto r = verify::analyze_splitphase(double_wait);
  EXPECT_EQ(count_code(r, "V221"), 1u) << r.render_text();
}

TEST(SplitPhaseVerifier, V222BlockingCollectiveInsideWindow) {
  Program p;
  p.istart_allreduce(ir::op_add(), 1, 1).allreduce(ir::op_add()).wait(1);
  const auto r = verify::analyze_splitphase(p);
  EXPECT_EQ(count_code(r, "V222"), 1u) << r.render_text();
  EXPECT_EQ(r.exit_code(), 3);
}

TEST(SplitPhaseVerifier, V222HandleReuseWhileInFlight) {
  Program p;
  p.istart_bcast(0, 1, 1).istart_bcast(0, 1, 1);
  const auto r = verify::analyze_splitphase(p);
  EXPECT_TRUE(has_code(r, "V222")) << r.render_text();
}

TEST(SplitPhaseVerifier, V223OutOfOrderCompletion) {
  // Two DISJOINT requests in flight is legal; completing the younger one
  // first is the rank-divergence hazard.
  Program p;
  p.istart_reduce(ir::op_add(), 0, 1, 1)
      .istart_bcast(0, 1, 2)
      .wait(2)
      .wait(1);
  const auto r = verify::analyze_splitphase(p);
  EXPECT_EQ(count_code(r, "V223"), 1u) << r.render_text();
  EXPECT_FALSE(has_code(r, "V222"));
  EXPECT_FALSE(has_code(r, "V220"));

  Program in_order;  // same two requests completed in issue order: clean
  in_order.istart_reduce(ir::op_add(), 0, 1, 1)
      .istart_bcast(0, 1, 2)
      .wait(1)
      .wait(2);
  EXPECT_TRUE(verify::analyze_splitphase(in_order).empty());
}

TEST(SplitPhaseVerifier, AnalyzeScheduleRunsThePass) {
  Program p;
  p.istart_reduce(ir::op_add(), 0, 1, 1).map(ir::fn_pair());
  const auto r = verify::analyze_schedule(p);
  EXPECT_TRUE(has_code(r, "V220")) << r.render_text();
  EXPECT_EQ(r.exit_code(), 3);
}

// --- the overlap rules ---------------------------------------------------

TEST(OverlapRules, CatalogHasTheTwoRulesOutsideAllRules) {
  const auto extra = rules::overlap_rules();
  ASSERT_EQ(extra.size(), 2u);
  EXPECT_EQ(extra[0]->name(), "Overlap-Split");
  EXPECT_EQ(extra[1]->name(), "Wait-Sink");
  for (const auto& r : rules::all_rules())
    EXPECT_NE(r->name(), "Overlap-Split");
}

TEST(OverlapRules, SplitRewritesCollectiveMapToWindow) {
  Program p;
  p.reduce(ir::op_add()).map(ir::fn_pair());
  const auto m = rules::rule_overlap_split()->match(p, 0);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->equivalence, rules::Equivalence::full);
  EXPECT_EQ(m->apply(p).show(),
            "istart_reduce(+,h=1) ; map(pair) ; wait(h=1)");
}

TEST(OverlapRules, SplitRejectsWhenARequestIsInFlight) {
  Program p;
  p.istart_allreduce(ir::op_add(), 1, 1)
      .allreduce(ir::op_add())
      .map(ir::fn_pair());
  EXPECT_FALSE(rules::rule_overlap_split()->match(p, 1).has_value());

  Program no_map;  // nothing to overlap with
  no_map.reduce(ir::op_add()).scan(ir::op_add());
  EXPECT_FALSE(rules::rule_overlap_split()->match(no_map, 0).has_value());
}

TEST(OverlapRules, WaitSinkPushesTheWaitPastLocalWork) {
  Program p;
  p.istart_bcast(0, 1, 1).wait(1).map(ir::fn_pair());
  const auto m = rules::rule_wait_sink()->match(p, 1);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->apply(p).show(),
            "istart_bcast(h=1) ; map(pair) ; wait(h=1)");
}

TEST(OverlapRules, SplitPhaseSpellingsEvaluateIdentically) {
  // The rules are full equivalences: applying them never changes the
  // reference denotation.
  Program p;
  p.allreduce(ir::op_max()).map(ir::fn_triple());
  const auto m = rules::rule_overlap_split()->match(p, 0);
  ASSERT_TRUE(m.has_value());
  const Dist in = ir::dist_of_ints({7, -2, 9, 4});
  EXPECT_EQ(m->apply(p).eval_reference(in), p.eval_reference(in));
}

TEST(OverlapRules, GreedyOptimizerBuildsACertifiedWindow) {
  // Latency-bound machine: BS-Comcast turns bcast;scan into bcast;map#,
  // then Overlap-Split hides the map# under the bcast.  The derivation's
  // certificates (including the overlap rule's) must discharge.
  const model::Machine mach{.p = 8, .m = 256, .ts = 5000, .tw = 2};
  Program p;
  p.bcast().scan(ir::op_add());
  auto catalog = rules::all_rules();
  for (auto& r : rules::overlap_rules()) catalog.push_back(std::move(r));
  const rules::Optimizer opt(mach, catalog);
  const auto result = opt.optimize(p);
  const bool split_applied =
      std::any_of(result.log.begin(), result.log.end(),
                  [](const auto& s) { return s.rule == "Overlap-Split"; });
  ASSERT_TRUE(split_applied) << result.program.show();
  EXPECT_FALSE(ir::overlap_windows(result.program).empty());

  verify::VerifyOptions vopts;
  vopts.p = mach.p;
  const auto vres = verify::verify_program(p, &result, vopts);
  EXPECT_TRUE(vres.ok()) << vres.render_text(true);
  EXPECT_EQ(vres.exit_code(), 0);
}

// --- cost model and simnet pricing ---------------------------------------

TEST(OverlapCost, ProgramTimePricesWindowsAsMaxCommLocal) {
  const model::Machine mach{.p = 8, .m = 100, .ts = 1000, .tw = 2};
  Program split;
  split.istart_allreduce(ir::op_add(), 1, 1).map(fn_heavy(50)).wait(1);
  Program blocking;
  blocking.allreduce(ir::op_add()).map(fn_heavy(50));

  const double comm = model::stage_cost(*blocking.stages()[0]).eval(mach);
  const double local = model::stage_cost(*blocking.stages()[1]).eval(mach);
  EXPECT_DOUBLE_EQ(model::program_time(split, mach), std::max(comm, local));
  EXPECT_DOUBLE_EQ(model::program_time(blocking, mach), comm + local);
  EXPECT_LT(model::program_time(split, mach),
            model::program_time(blocking, mach));
  // The symbolic per-stage sum stays conservative (istart = its twin).
  EXPECT_DOUBLE_EQ(model::program_cost(split).eval(mach), comm + local);
}

TEST(OverlapCost, IneligibleSplitPhasePricesAsBlocking) {
  const model::Machine mach{.p = 8, .m = 100, .ts = 1000, .tw = 2};
  Program p;  // scan interior: no window, no discount
  p.istart_reduce(ir::op_add(), 0, 1, 1).scan(ir::op_add()).wait(1);
  Program twin;
  twin.reduce(ir::op_add()).scan(ir::op_add());
  EXPECT_DOUBLE_EQ(model::program_time(p, mach),
                   model::program_time(twin, mach));
}

TEST(OverlapSimnet, WindowShortensTheMakespan) {
  const model::Machine mach{.p = 8, .m = 200, .ts = 2000, .tw = 2};
  Program split;
  split.istart_allreduce(ir::op_add(), 1, 1).map(fn_heavy(40)).wait(1);
  Program blocking;
  blocking.allreduce(ir::op_add()).map(fn_heavy(40));
  const auto s = exec::run_on_simnet(split, mach);
  const auto b = exec::run_on_simnet(blocking, mach);
  EXPECT_LT(s.time, b.time);
  EXPECT_EQ(s.messages, b.messages);  // same traffic, only the clocks move
  EXPECT_EQ(s.words, b.words);
}

// --- profiler: overlapped spans ------------------------------------------

TEST(OverlapProfile, LabelsOverlappedSpansAndReportsTheGap) {
  const model::Machine mach{.p = 4, .m = 100, .ts = 1500, .tw = 2};
  Program split;
  split.istart_allreduce(ir::op_add(), 1, 1).map(fn_heavy(30)).wait(1);
  const auto prof = obs::profile_program(split, mach);
  ASSERT_EQ(prof.stages.size(), 3u);
  for (const auto& sp : prof.stages) EXPECT_TRUE(sp.overlapped) << sp.label;
  EXPECT_GT(prof.blocking_makespan, prof.makespan);
  EXPECT_TRUE(prof.balanced());
  EXPECT_TRUE(prof.path_complete());
  EXPECT_NE(prof.render_text().find("[overlapped]"), std::string::npos);
  EXPECT_NE(prof.render_text().find("hidden by istart..wait"),
            std::string::npos);

  Program blocking;  // no windows: the gap line stays off
  blocking.allreduce(ir::op_add()).map(fn_heavy(30));
  const auto base = obs::profile_program(blocking, mach);
  EXPECT_EQ(base.blocking_makespan, 0.0);
  for (const auto& sp : base.stages) EXPECT_FALSE(sp.overlapped);
}

// --- threaded execution: differential fuzz -------------------------------

struct Spelling {
  const char* name;
  Program blocking;
  Program split;
  int min_p = 1;  ///< rooted spellings need the root in range
};

std::vector<Spelling> table1_spellings() {
  std::vector<Spelling> out;
  {
    Spelling s{.name = "reduce"};
    s.blocking.reduce(ir::op_add()).map(ir::fn_pair());
    s.split.istart_reduce(ir::op_add(), 0, 1, 1).map(ir::fn_pair()).wait(1);
    out.push_back(std::move(s));
  }
  {
    Spelling s{.name = "allreduce"};
    s.blocking.allreduce(ir::op_max()).map(ir::fn_triple());
    s.split.istart_allreduce(ir::op_max(), 1, 1).map(ir::fn_triple()).wait(1);
    out.push_back(std::move(s));
  }
  {
    Spelling s{.name = "bcast"};
    s.blocking.bcast().map(ir::fn_pair()).map(ir::fn_proj1());
    s.split.istart_bcast(0, 1, 1)
        .map(ir::fn_pair())
        .map(ir::fn_proj1())
        .wait(1);
    out.push_back(std::move(s));
  }
  {
    Spelling s{.name = "two-windows", .min_p = 2};
    s.blocking.allreduce(ir::op_add())
        .map(ir::fn_pair())
        .map(ir::fn_proj1())
        .bcast(1)
        .map(ir::fn_id());
    s.split.istart_allreduce(ir::op_add(), 1, 1)
        .map(ir::fn_pair())
        .map(ir::fn_proj1())
        .wait(1)
        .istart_bcast(1, 1, 2)
        .map(ir::fn_id())
        .wait(2);
    out.push_back(std::move(s));
  }
  {
    Spelling s{.name = "rooted-reduce", .min_p = 3};
    s.blocking.reduce(ir::op_add(), 2).map(ir::fn_pair()).bcast(2);
    s.split.istart_reduce(ir::op_add(), 2, 1, 7)
        .map(ir::fn_pair())
        .wait(7)
        .bcast(2);
    out.push_back(std::move(s));
  }
  return out;
}

TEST(SplitPhaseThreads, BlockingAndSplitPhaseAgreeOnEveryShape) {
  std::uint64_t seed = 1;
  for (const auto& s : table1_spellings()) {
    for (int p = s.min_p; p <= 8; ++p) {
      const Dist in = random_dist(p, 2, seed++);
      const Dist want = s.blocking.eval_reference(in);
      EXPECT_EQ(exec::run_on_threads(s.blocking, in), want)
          << s.name << " blocking, p=" << p;
      EXPECT_EQ(exec::run_on_threads(s.split, in), want)
          << s.name << " split, p=" << p;
    }
  }
}

TEST(SplitPhaseThreads, SegmentCountDoesNotChangeResults) {
  Program split;
  split.istart_allreduce(ir::op_add(), 1, 1).map(ir::fn_pair()).wait(1);
  Program blocking;
  blocking.allreduce(ir::op_add()).map(ir::fn_pair());
  const Dist in = random_dist(6, 5, 42);
  const Dist want = blocking.eval_reference(in);
  for (const char* segs : {"1", "3", "7", "64"}) {
    ::setenv("COLOP_OVERLAP_SEGMENTS", segs, 1);
    EXPECT_EQ(exec::run_on_threads(split, in), want) << "segments=" << segs;
  }
  ::unsetenv("COLOP_OVERLAP_SEGMENTS");
}

}  // namespace
}  // namespace colop
