// Value semantics: variants, tuples, undefined, words/bytes accounting.

#include <gtest/gtest.h>

#include "colop/ir/value.h"
#include "colop/support/error.h"

namespace colop::ir {
namespace {

TEST(Value, DefaultIsUndefined) {
  Value v;
  EXPECT_TRUE(v.is_undefined());
  EXPECT_FALSE(v.is_int());
  EXPECT_FALSE(v.is_real());
  EXPECT_FALSE(v.is_tuple());
  EXPECT_EQ(v.to_string(), "_");
}

TEST(Value, IntAccessors) {
  Value v(std::int64_t{42});
  EXPECT_TRUE(v.is_int());
  EXPECT_TRUE(v.is_number());
  EXPECT_EQ(v.as_int(), 42);
  EXPECT_DOUBLE_EQ(v.number(), 42.0);
  EXPECT_EQ(v.to_string(), "42");
}

TEST(Value, RealAccessors) {
  Value v(2.5);
  EXPECT_TRUE(v.is_real());
  EXPECT_DOUBLE_EQ(v.as_real(), 2.5);
  EXPECT_DOUBLE_EQ(v.number(), 2.5);
}

TEST(Value, WrongAccessorThrows) {
  EXPECT_THROW((void)Value(1).as_real(), Error);
  EXPECT_THROW((void)Value(1.0).as_int(), Error);
  EXPECT_THROW((void)Value(1).as_tuple(), Error);
  EXPECT_THROW((void)Value::undefined().as_int(), Error);
}

TEST(Value, TupleAccessAndProjection) {
  Value v = Value::tuple_of({Value(1), Value(2.0), Value::undefined()});
  ASSERT_TRUE(v.is_tuple());
  EXPECT_EQ(v.at(0).as_int(), 1);
  EXPECT_DOUBLE_EQ(v.at(1).as_real(), 2.0);
  EXPECT_TRUE(v.at(2).is_undefined());
  EXPECT_THROW((void)v.at(3), Error);
  EXPECT_EQ(v.to_string(), "(1,2,_)");
}

TEST(Value, NestedTuples) {
  Value v = Value::tuple_of({Value::tuple_of({Value(1), Value(2)}), Value(3)});
  EXPECT_EQ(v.at(0).at(1).as_int(), 2);
  EXPECT_EQ(v.to_string(), "((1,2),3)");
}

TEST(Value, StructuralEquality) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_FALSE(Value(1) == Value(2));
  EXPECT_FALSE(Value(1) == Value(1.0));  // int and real are distinct
  EXPECT_EQ(Value::undefined(), Value::undefined());
  EXPECT_EQ(Value::tuple_of({Value(1), Value::undefined()}),
            Value::tuple_of({Value(1), Value::undefined()}));
  EXPECT_FALSE(Value::tuple_of({Value(1)}) == Value(1));
}

TEST(Value, WordsCountDefinedNumericComponents) {
  EXPECT_EQ(Value(7).words(), 1u);
  EXPECT_EQ(Value(7.5).words(), 1u);
  EXPECT_EQ(Value::undefined().words(), 0u);
  // The paper's quadruple with a stripped scan component: 3 words travel.
  Value stripped = Value::tuple_of(
      {Value::undefined(), Value(1), Value(2), Value(3)});
  EXPECT_EQ(stripped.words(), 3u);
}

TEST(Value, PayloadBytesIsEightPerWord) {
  EXPECT_EQ(payload_bytes(Value(1)), 8u);
  EXPECT_EQ(payload_bytes(Value::undefined()), 0u);
  EXPECT_EQ(payload_bytes(Value::tuple_of({Value(1), Value(2)})), 16u);
  Block b{Value(1), Value::tuple_of({Value(2), Value(3)})};
  EXPECT_EQ(payload_bytes(b), 24u);
}

TEST(Value, BlockAndDistHelpers) {
  const Dist d = dist_of_ints({1, 2, 3});
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[1][0].as_int(), 2);
  EXPECT_EQ(to_string(d), "[[1]; [2]; [3]]");
  const Block b = block_of_ints({4, 5});
  EXPECT_EQ(to_string(b), "[4,5]");
}

}  // namespace
}  // namespace colop::ir
