// Trace-context: TraceId shape and uniqueness under concurrent minting,
// SpanId monotonicity and reset, ScopedTrace restore semantics, and the
// full id round trip — recorded bundle -> store -> diff JSON.

#include <algorithm>
#include <filesystem>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "colop/obs/json.h"
#include "colop/obs/run_diff.h"
#include "colop/obs/run_store.h"
#include "colop/obs/trace_context.h"

namespace obs = colop::obs;

namespace {

bool is_hex16(const std::string& id) {
  return id.size() == 16 &&
         std::all_of(id.begin(), id.end(), [](char c) {
           return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
         });
}

TEST(TraceContext, MintedIdsAreHex16) {
  for (int i = 0; i < 32; ++i) EXPECT_TRUE(is_hex16(obs::mint_trace_id()));
}

TEST(TraceContext, ConcurrentMintingIsUnique) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 64;
  std::vector<std::vector<std::string>> minted(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&minted, t] {
      minted[static_cast<std::size_t>(t)].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i)
        minted[static_cast<std::size_t>(t)].push_back(obs::mint_trace_id());
    });
  for (auto& w : workers) w.join();

  std::set<std::string> unique;
  for (const auto& per_thread : minted)
    for (const auto& id : per_thread) {
      EXPECT_TRUE(is_hex16(id));
      unique.insert(id);
    }
  EXPECT_EQ(unique.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(TraceContext, SpanIdsAreMonotonicAndResetWithTrace) {
  const obs::ScopedTrace trace("00000000000000ff");
  const std::uint64_t first = obs::next_span_id();
  const std::uint64_t second = obs::next_span_id();
  EXPECT_LT(first, second);

  // Installing a new trace id restarts span numbering from 1.
  obs::set_trace_id("00000000000000fe");
  EXPECT_EQ(obs::next_span_id(), 1u);
  EXPECT_EQ(obs::next_span_id(), 2u);
}

TEST(TraceContext, ConcurrentSpanIdsAreUnique) {
  const obs::ScopedTrace trace;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 256;
  std::vector<std::vector<std::uint64_t>> spans(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&spans, t] {
      spans[static_cast<std::size_t>(t)].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i)
        spans[static_cast<std::size_t>(t)].push_back(obs::next_span_id());
    });
  for (auto& w : workers) w.join();

  std::set<std::uint64_t> unique;
  for (const auto& per_thread : spans) {
    // Each thread's view is strictly increasing (fetch_add order).
    EXPECT_TRUE(std::is_sorted(per_thread.begin(), per_thread.end()));
    unique.insert(per_thread.begin(), per_thread.end());
  }
  EXPECT_EQ(unique.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(TraceContext, ScopedTraceRestoresPrevious) {
  obs::set_trace_id("00000000000000aa");
  {
    const obs::ScopedTrace inner("00000000000000bb");
    EXPECT_EQ(obs::trace_id(), "00000000000000bb");
    EXPECT_EQ(inner.id(), "00000000000000bb");
  }
  EXPECT_EQ(obs::trace_id(), "00000000000000aa");
  obs::set_trace_id("");
  EXPECT_TRUE(obs::trace_id().empty());
  EXPECT_TRUE(obs::trace_id_json_field().empty());
}

// The satellite round trip: a minted id stamped into a recorded bundle
// must come back out of the archive AND out of the diff JSON unchanged.
TEST(TraceContext, IdRoundTripsThroughBundleAndDiffJson) {
  const std::filesystem::path root =
      std::filesystem::path(testing::TempDir()) / "trace_roundtrip";
  std::filesystem::remove_all(root);
  const obs::RunStore store(root.string());

  auto record = [&](int p) {
    const obs::ScopedTrace trace;  // mints a fresh id
    obs::RunBundle bundle;
    bundle.trace_id = obs::trace_id();
    bundle.timestamp = "2026-08-08 10:00:00";
    bundle.timestamp_ns = static_cast<std::uint64_t>(p);
    bundle.machine = {p, 64, 400, 2};
    bundle.program_before = bundle.program_after = "scan(+)";
    bundle.stages_after = {{0, "scan(+)", "scan", false, "", 10.0 * p}};
    bundle.model_cost_after = 10.0 * p;
    store.save(bundle);
    return bundle.trace_id;
  };
  const std::string id_a = record(4);
  const std::string id_b = record(8);
  ASSERT_NE(id_a, id_b);

  const obs::RunBundle a = store.resolve(id_a);
  const obs::RunBundle b = store.resolve(id_b);
  EXPECT_EQ(a.trace_id, id_a);  // archive round trip
  EXPECT_EQ(b.trace_id, id_b);

  std::ostringstream os;
  obs::diff_runs(a, b).write_json(os);
  const auto doc = obs::json::parse(os.str());
  EXPECT_EQ(doc.get("runs")->get("a")->get("trace_id")->str, id_a);
  EXPECT_EQ(doc.get("runs")->get("b")->get("trace_id")->str, id_b);
}

}  // namespace
