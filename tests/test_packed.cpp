// Flat data plane: PackedBlock pack/unpack is lossless, serialization
// round-trips, wire accounting matches the boxed word counts, compiled
// kernels agree with the boxed operators (including undefined gating and
// int/real promotion), packable() admits exactly the flat programs, and
// the thread executor produces identical results and traffic on both
// planes.

#include <gtest/gtest.h>

#include <cstdlib>

#include "colop/exec/thread_executor.h"
#include "colop/ir/packed.h"
#include "colop/ir/packed_eval.h"
#include "colop/ir/packed_kernels.h"
#include "colop/rules/derived_ops.h"
#include "colop/support/error.h"

namespace colop::ir {
namespace {

Value U() { return Value::undefined(); }

Block boxed_apply2(const BinOp& op, const Block& a, const Block& b) {
  Block out(a.size());
  for (std::size_t j = 0; j < a.size(); ++j) out[j] = op(a[j], b[j]);
  return out;
}

std::size_t boxed_bytes(const Block& b) {
  std::size_t n = 0;
  for (const Value& v : b) n += payload_bytes(v);
  return n;
}

// --- masks ---------------------------------------------------------------

TEST(PackedMask, BasicOps) {
  Mask m(mask_words(130), 0);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_TRUE(mask_none(m));
  EXPECT_EQ(mask_popcount(m), 0u);
  mask_set(m, 0, true);
  mask_set(m, 64, true);
  mask_set(m, 129, true);
  EXPECT_EQ(mask_popcount(m), 3u);
  EXPECT_TRUE(mask_get(m, 129));
  EXPECT_FALSE(mask_get(m, 128));
  EXPECT_FALSE(mask_get(m, 4096));  // out of range reads as undefined

  const Mask full = mask_full(130);
  EXPECT_EQ(mask_popcount(full), 130u);
  EXPECT_TRUE(mask_subset(m, full));
  EXPECT_FALSE(mask_subset(full, m));
  EXPECT_EQ(mask_popcount(mask_and(m, full)), 3u);
}

// --- pack / unpack -------------------------------------------------------

TEST(PackedBlockTest, ScalarIntRoundTrip) {
  const Block b{Value(1), Value(2), U(), Value(-7)};
  const auto p = PackedBlock::pack(b);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->is_scalar());
  EXPECT_EQ(p->lane(0).dtype, DType::i64);
  EXPECT_EQ(p->unpack(), b);
}

TEST(PackedBlockTest, ScalarRealRoundTrip) {
  const Block b{Value(1.5), U(), Value(-0.0), Value(3.25)};
  const auto p = PackedBlock::pack(b);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->lane(0).dtype, DType::f64);
  const Block back = p->unpack();
  ASSERT_EQ(back.size(), b.size());
  EXPECT_EQ(back, b);  // structural: -0.0 bit pattern preserved
}

TEST(PackedBlockTest, AllUndefinedCollapsesToWild) {
  const Block b{U(), U(), U()};
  const auto p = PackedBlock::pack(b);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->is_wild());
  EXPECT_EQ(p->unpack(), b);
  EXPECT_EQ(payload_bytes(*p), 0u);
}

TEST(PackedBlockTest, TupleWithUndefinedComponentsRoundTrip) {
  const Block b{Value::tuple_of({Value(1), Value(2.5)}),
                Value::tuple_of({U(), Value(3.5)}), U(),
                Value::tuple_of({Value(4), U()})};
  const auto p = PackedBlock::pack(b);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->arity(), 2);
  EXPECT_EQ(p->unpack(), b);
}

TEST(PackedBlockTest, RejectsUnpackableShapes) {
  // Mixed int/real in one lane.
  EXPECT_FALSE(PackedBlock::pack({Value(1), Value(2.0)}).has_value());
  // Mixed arity.
  EXPECT_FALSE(PackedBlock::pack({Value::tuple_of({Value(1), Value(2)}),
                                  Value::tuple_of({Value(1)})})
                   .has_value());
  // Scalar next to tuple.
  EXPECT_FALSE(
      PackedBlock::pack({Value(1), Value::tuple_of({Value(1), Value(2)})})
          .has_value());
  // Nested tuple.
  EXPECT_FALSE(PackedBlock::pack(
                   {Value::tuple_of({Value::tuple_of({Value(1)}), Value(2)})})
                   .has_value());
  // Empty tuple.
  EXPECT_FALSE(PackedBlock::pack({Value(Tuple{})}).has_value());
}

TEST(PackedBlockTest, WireBytesMatchBoxedWordCounts) {
  // The paper's accounting: undefined costs zero words.  The flat plane
  // must charge identical traffic, or rule cost comparisons would change
  // depending on the data plane.
  const Block blocks[] = {
      {Value(1), Value(2), U(), Value(3)},
      {U(), U()},
      {Value::tuple_of({Value(1), U()}), U(),
       Value::tuple_of({Value(2), Value(3)})},
      {Value(1.5), Value(2.5)},
  };
  for (const Block& b : blocks) {
    const auto p = PackedBlock::pack(b);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(payload_bytes(*p), boxed_bytes(b));
  }
}

TEST(PackedBlockTest, SerializationRoundTrips) {
  const Block blocks[] = {
      {Value(1), U(), Value(3)},
      {U(), U(), U()},
      {Value::tuple_of({Value(1), Value(2.5)}), U(),
       Value::tuple_of({U(), Value(-1.5)})},
  };
  for (const Block& b : blocks) {
    const auto p = PackedBlock::pack(b);
    ASSERT_TRUE(p.has_value());
    const auto bytes = p->to_bytes();
    const PackedBlock q = PackedBlock::from_bytes(bytes.data(), bytes.size());
    EXPECT_EQ(q, *p);
    EXPECT_EQ(q.unpack(), b);
  }
}

TEST(PackedBlockTest, FromBytesRejectsGarbage) {
  EXPECT_THROW((void)PackedBlock::from_bytes(nullptr, 0), Error);
  const std::vector<std::byte> junk(16, std::byte{0x5a});
  EXPECT_THROW((void)PackedBlock::from_bytes(junk.data(), junk.size()), Error);
}

// --- compiled kernels vs boxed operators ---------------------------------

TEST(PackedKernels, StandardOpsAgreeWithBoxed) {
  const Block a{Value(6), U(), Value(-3), Value(10), U()};
  const Block b{Value(4), Value(7), U(), Value(3), U()};
  for (const auto& op : {op_add(), op_mul(), op_max(), op_min(), op_band(),
                         op_bor(), op_gcd(), op_modadd(97), op_modmul(97),
                         op_first()}) {
    ASSERT_TRUE(op->has_packed()) << op->name();
    const auto pa = PackedBlock::pack(a), pb = PackedBlock::pack(b);
    ASSERT_TRUE(pa && pb);
    const PackedBlock out = op->packed()(*pa, *pb);
    EXPECT_EQ(out.unpack(), boxed_apply2(*op, a, b)) << op->name();
  }
}

TEST(PackedKernels, RealAndPromotedOpsAgreeWithBoxed) {
  const Block a{Value(1.5), U(), Value(-2.25)};
  const Block b{Value(0.5), Value(3.0), Value(4.0)};
  for (const auto& op : {op_add(), op_mul(), op_max(), op_min(), op_fadd(),
                         op_fmul(), op_first()}) {
    const auto pa = PackedBlock::pack(a), pb = PackedBlock::pack(b);
    ASSERT_TRUE(pa && pb);
    EXPECT_EQ(op->packed()(*pa, *pb).unpack(), boxed_apply2(*op, a, b))
        << op->name();
  }
}

TEST(PackedKernels, IntRealPromotionMatchesBoxed) {
  // add(int-lane, real-lane) widens to real, exactly like the boxed
  // numeric() visitor; fadd on int lanes produces reals.
  const Block ints{Value(1), Value(2)};
  const Block reals{Value(0.5), Value(1.5)};
  const auto pi = PackedBlock::pack(ints), pr = PackedBlock::pack(reals);
  ASSERT_TRUE(pi && pr);
  EXPECT_EQ(op_add()->packed()(*pi, *pr).unpack(),
            boxed_apply2(*op_add(), ints, reals));
  EXPECT_EQ(op_fadd()->packed()(*pi, *pi).unpack(),
            boxed_apply2(*op_fadd(), ints, ints));
}

TEST(PackedKernels, IntOnlyOpsThrowOnRealLanes) {
  const Block reals{Value(0.5), Value(1.5)};
  const auto pr = PackedBlock::pack(reals);
  ASSERT_TRUE(pr.has_value());
  EXPECT_THROW((void)op_gcd()->packed()(*pr, *pr), Error);
  EXPECT_THROW((void)op_band()->packed()(*pr, *pr), Error);
  // ... but not when every element pair is undefined on one side, exactly
  // like the boxed gate which never evaluates an undefined pair.
  const auto wild = PackedBlock::wild(2);
  EXPECT_TRUE(op_gcd()->packed()(*pr, wild).is_wild());
}

TEST(PackedKernels, Mat2AgreesWithBoxed) {
  const auto m = [](int a, int b, int c, int d) {
    return Value::tuple_of({Value(a), Value(b), Value(c), Value(d)});
  };
  const Block a{m(1, 2, 3, 4), m(0, 1, 1, 0)};
  const Block b{m(5, 6, 7, 8), m(2, 0, 0, 2)};
  const auto pa = PackedBlock::pack(a), pb = PackedBlock::pack(b);
  ASSERT_TRUE(pa && pb);
  EXPECT_EQ(op_mat2()->packed()(*pa, *pb).unpack(),
            boxed_apply2(*op_mat2(), a, b));
}

TEST(PackedKernels, ElemFnBuildersAgreeWithBoxed) {
  const Block b{Value(3), U(), Value(-1)};
  const auto p = PackedBlock::pack(b);
  ASSERT_TRUE(p.has_value());
  for (const auto& f : {fn_pair(), fn_triple(), fn_quadruple(), fn_id()}) {
    ASSERT_TRUE(static_cast<bool>(f.packed_fn)) << f.name;
    Block expect(b.size());
    for (std::size_t j = 0; j < b.size(); ++j) expect[j] = f(b[j]);
    EXPECT_EQ(f.packed_fn(*p).unpack(), expect) << f.name;
  }
  // pi_1 undoes pair; composition propagates the kernels.
  const ElemFn comp = fn_compose(fn_pair(), fn_proj1());
  ASSERT_TRUE(static_cast<bool>(comp.packed_fn));
  EXPECT_EQ(comp.packed_fn(*p).unpack(), b);
}

TEST(PackedKernels, DerivedOpSr2AgreesWithBoxed) {
  const auto sr2 = rules::make_op_sr2(op_mul(), op_add());
  ASSERT_TRUE(sr2->has_packed());
  const auto pr = [](int s, int r) {
    return Value::tuple_of({Value(s), Value(r)});
  };
  const Block a{pr(1, 2), pr(3, 4), U()};
  const Block b{pr(5, 6), pr(7, 8), U()};
  const auto pa = PackedBlock::pack(a), pb = PackedBlock::pack(b);
  ASSERT_TRUE(pa && pb);
  EXPECT_EQ(sr2->packed()(*pa, *pb).unpack(), boxed_apply2(*sr2, a, b));
}

// --- packable / routing --------------------------------------------------

TEST(Packable, AdmitsFlatProgramsRejectsOthers) {
  Program flat;
  flat.map(fn_pair()).scan(rules::make_op_sr2(op_mul(), op_add()), 2)
      .map(fn_proj1()).reduce(op_add());
  EXPECT_TRUE(packable(flat, Shape::scalar(), 4));

  // A map with no packed kernel is not packable.
  ElemFn opaque;
  opaque.name = "opaque";
  opaque.fn = [](const Value& v) { return v; };
  Program boxed_only;
  boxed_only.map(opaque);
  EXPECT_FALSE(packable(boxed_only, Shape::scalar(), 4));

  // iter is packable only for powers of two.
  Program it;
  it.bcast().iter(rules::make_op_br(op_add()),
                  rules::make_general_br(op_add()));
  EXPECT_TRUE(packable(it, Shape::scalar(), 8));
  EXPECT_FALSE(packable(it, Shape::scalar(), 6));

  // A shape error inside the window (pi_1 of a scalar) means boxed.
  Program bad;
  bad.map(fn_proj1());
  EXPECT_FALSE(packable(bad, Shape::scalar(), 4));
}

TEST(Packable, DistShapeDetection) {
  EXPECT_EQ(dist_shape({{Value(1), U()}}), Shape::scalar());
  EXPECT_EQ(dist_shape({{U(), U()}}), Shape::scalar());  // nothing defined
  EXPECT_EQ(dist_shape({{Value::tuple_of({Value(1), Value(2)})}}),
            Shape::replicate(Shape::scalar(), 2));
  EXPECT_FALSE(dist_shape({{Value(1), Value::tuple_of({Value(1), Value(2)})}})
                   .has_value());
  EXPECT_FALSE(
      dist_shape({{Value::tuple_of({Value::tuple_of({Value(1)}), Value(2)})}})
          .has_value());
}

TEST(Packable, NonUniformBlockSizesStayBoxed) {
  Program prog;
  prog.scan(op_add());
  const Dist input{{Value(1), Value(2)}, {Value(3)}};
  EXPECT_FALSE(try_pack_for(prog, input).has_value());
  // ... and the boxed path still reports the canonical error.
  EXPECT_THROW((void)prog.eval_reference(input), Error);
}

TEST(Packable, EnvVarForcesPlane) {
  Program prog;
  prog.scan(op_add());
  const Dist input{{Value(1)}, {Value(2)}};

  ::setenv("COLOP_DATA_PLANE", "boxed", 1);
  EXPECT_EQ(data_plane_from_env(), DataPlane::Boxed);
  EXPECT_EQ(prog.eval_reference(input), eval_reference_boxed(prog, input));

  ::setenv("COLOP_DATA_PLANE", "packed", 1);
  EXPECT_EQ(data_plane_from_env(), DataPlane::Packed);
  EXPECT_EQ(prog.eval_reference(input), eval_reference_boxed(prog, input));

  // Forcing packed on an unpackable program is an error, not a fallback.
  ElemFn opaque;
  opaque.name = "opaque";
  opaque.fn = [](const Value& v) { return v; };
  Program boxed_only;
  boxed_only.map(opaque);
  EXPECT_THROW((void)boxed_only.eval_reference(input), Error);

  ::unsetenv("COLOP_DATA_PLANE");
  EXPECT_EQ(data_plane_from_env(), DataPlane::Auto);
}

// --- executor ------------------------------------------------------------

TEST(PackedExec, ThreadRunMatchesBoxedIncludingTraffic) {
  Program prog;
  prog.map(fn_pair()).scan(rules::make_op_sr2(op_mul(), op_add()), 2)
      .map(fn_proj1()).allreduce(op_add());
  Dist input;
  for (int r = 0; r < 5; ++r) {
    Block blk;
    for (int j = 0; j < 4; ++j) blk.push_back(Value(r * 4 + j + 1));
    input.push_back(std::move(blk));
  }

  const auto boxed =
      exec::run_on_threads_instrumented(prog, input, DataPlane::Boxed);
  const auto packed =
      exec::run_on_threads_instrumented(prog, input, DataPlane::Packed);
  EXPECT_FALSE(boxed.used_packed);
  EXPECT_TRUE(packed.used_packed);
  EXPECT_EQ(packed.output, boxed.output);
  EXPECT_EQ(packed.traffic.messages, boxed.traffic.messages);
  EXPECT_EQ(packed.traffic.bytes, boxed.traffic.bytes);
  EXPECT_EQ(boxed.output, prog.eval_reference(input));
}

TEST(PackedExec, ForcedPackedOnUnpackableProgramThrows) {
  ElemFn opaque;
  opaque.name = "opaque";
  opaque.fn = [](const Value& v) { return v; };
  Program prog;
  prog.map(opaque);
  EXPECT_THROW((void)exec::run_on_threads(prog, {{Value(1)}, {Value(2)}},
                                          DataPlane::Packed),
               Error);
}

}  // namespace
}  // namespace colop::ir
