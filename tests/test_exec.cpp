// Executor-level coverage: instrumentation, stage-by-stage execution on a
// custom SPMD driver, schedule selection, and local-program properties.

#include <gtest/gtest.h>

#include "colop/exec/sim_executor.h"
#include "colop/exec/thread_executor.h"
#include "colop/ir/ir.h"
#include "colop/mpsim/mpsim.h"

namespace colop::exec {
namespace {

using ir::Program;
using ir::Value;

TEST(ThreadExecutor, InstrumentationReportsWallTimeAndTraffic) {
  Program p;
  p.scan(ir::op_add()).bcast();
  const auto run = run_on_threads_instrumented(p, ir::dist_of_ints({1, 2, 3, 4}));
  EXPECT_GT(run.wall_seconds, 0.0);
  EXPECT_GT(run.traffic.messages, 0u);
  EXPECT_GT(run.traffic.bytes, 0u);
}

TEST(ThreadExecutor, LocalProgramsSendNothing) {
  Program p;
  p.map(ir::fn_pair()).map(ir::fn_proj1());
  const auto run = run_on_threads_instrumented(p, ir::dist_of_ints({1, 2, 3}));
  EXPECT_EQ(run.traffic.messages, 0u);
  EXPECT_EQ(run.output, ir::dist_of_ints({1, 2, 3}));
}

TEST(ThreadExecutor, EmptyProgramIsIdentity) {
  const Program p;
  const ir::Dist in = ir::dist_of_ints({9, 8, 7});
  EXPECT_EQ(run_on_threads(p, in), in);
}

TEST(ThreadExecutor, RejectsEmptyInput) {
  Program p;
  p.bcast();
  EXPECT_THROW((void)run_on_threads(p, {}), Error);
}

TEST(ThreadExecutor, ExecStageComposesWithRawComms) {
  // Users can drive stages inside their own SPMD body, interleaved with
  // raw point-to-point messaging.
  const auto out = mpsim::run_spmd_collect<std::int64_t>(4, [](mpsim::Comm& comm) {
    ir::Block block{Value(std::int64_t{comm.rank() + 1})};
    const ir::ScanStage scan_stage(ir::op_mul());
    exec_stage(scan_stage, comm, block);
    // Hand-rolled rotate of the scan results.
    comm.send((comm.rank() + 1) % comm.size(), block[0].as_int(), 7);
    return comm.recv<std::int64_t>((comm.rank() + 3) % comm.size(), 7);
  });
  // scan(*) of [1,2,3,4] = [1,2,6,24]; rotated right by one.
  EXPECT_EQ(out, (std::vector<std::int64_t>{24, 1, 2, 6}));
}

TEST(ThreadExecutor, MultiElementBlocksStayLanewise) {
  Program p;
  p.scan(ir::op_add());
  ir::Dist in{ir::block_of_ints({1, 100}), ir::block_of_ints({2, 200}),
              ir::block_of_ints({3, 300})};
  const auto out = run_on_threads(p, in);
  EXPECT_EQ(out[2], ir::block_of_ints({6, 600}));
}

TEST(SimExecutor, AccumulatesAcrossCallsOnOneMachine) {
  Program p;
  p.bcast();
  const model::Machine mach{.p = 8, .m = 10, .ts = 100, .tw = 2};
  simnet::SimMachine sim(mach.p, simnet::NetParams{mach.ts, mach.tw});
  run_on_simnet(p, sim, mach.m);
  const double after_one = sim.makespan();
  run_on_simnet(p, sim, mach.m);
  EXPECT_DOUBLE_EQ(sim.makespan(), 2 * after_one);
}

TEST(SimExecutor, MapIndexedChargesPerRankLevels) {
  // op_comp-style stages cost more on high ranks (more binary digits).
  Program p;
  p.map_indexed({"comp", [](int, const Value& v) { return v; }, 0, 2});
  const model::Machine mach{.p = 8, .m = 10, .ts = 100, .tw = 2};
  simnet::SimMachine sim(mach.p, simnet::NetParams{mach.ts, mach.tw});
  run_on_simnet(p, sim, mach.m);
  EXPECT_DOUBLE_EQ(sim.clock(0), 0);           // digits(0) = 0
  EXPECT_DOUBLE_EQ(sim.clock(1), 2 * 10);      // digits(1) = 1
  EXPECT_DOUBLE_EQ(sim.clock(7), 3 * 2 * 10);  // digits(7) = 3
}

TEST(SimExecutor, IterChargesOnlyTheRoot) {
  Program p;
  p.iter({"dbl", [](const Value& v) { return v; }, 1});
  const model::Machine mach{.p = 8, .m = 10, .ts = 100, .tw = 2};
  simnet::SimMachine sim(mach.p, simnet::NetParams{mach.ts, mach.tw});
  run_on_simnet(p, sim, mach.m);
  EXPECT_DOUBLE_EQ(sim.clock(0), 3 * 10);  // log2(8) levels * m * 1 op
  for (int r = 1; r < 8; ++r) EXPECT_DOUBLE_EQ(sim.clock(r), 0);
}

}  // namespace
}  // namespace colop::exec
