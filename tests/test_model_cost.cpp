// The cost calculus (Section 4): closed forms, per-stage symbolic costs,
// and — crucially — EVERY row of Table 1, derived generically by costing
// the rules' LHS and RHS programs (nothing hard-coded).

#include <gtest/gtest.h>

#include <limits>

#include "colop/ir/ir.h"
#include "colop/model/cost.h"
#include "colop/rules/rules.h"

namespace colop::model {
namespace {

using ir::Program;
using rules::RulePtr;

Cost lhs_rhs_cost(const RulePtr& rule, const Program& lhs, Cost* after) {
  auto m = rule->match(lhs, 0);
  EXPECT_TRUE(m.has_value()) << rule->name();
  *after = program_cost(m->apply(lhs));
  return program_cost(lhs);
}

TEST(ClosedForms, Equations15To17) {
  const Machine mach{.p = 64, .m = 100, .ts = 50, .tw = 3};
  const double lg = 6;
  EXPECT_DOUBLE_EQ(t_bcast(mach), lg * (50 + 100 * 3));
  EXPECT_DOUBLE_EQ(t_reduce(mach), lg * (50 + 100 * (3 + 1)));
  EXPECT_DOUBLE_EQ(t_scan(mach), lg * (50 + 100 * (3 + 2)));
}

TEST(ClosedForms, StageCostsMatchClosedForms) {
  const Machine mach{.p = 32, .m = 7, .ts = 11, .tw = 2};
  Program b, r, s;
  b.bcast();
  r.reduce(ir::op_add());
  s.scan(ir::op_add());
  EXPECT_DOUBLE_EQ(program_time(b, mach), t_bcast(mach));
  EXPECT_DOUBLE_EQ(program_time(r, mach), t_reduce(mach));
  EXPECT_DOUBLE_EQ(program_time(s, mach), t_scan(mach));
}

TEST(ClosedForms, NonPowerOfTwoUsesCeilLog) {
  const Machine m6{.p = 6, .m = 1, .ts = 1, .tw = 1};
  const Machine m8{.p = 8, .m = 1, .ts = 1, .tw = 1};
  EXPECT_DOUBLE_EQ(t_bcast(m6), t_bcast(m8));  // ceil(log2 6) = 3
}

TEST(CostAlgebra, ShowRendersPaperStyle) {
  const Cost c{.logp_ts = 2, .logp_mtw = 2, .logp_m = 3};
  EXPECT_EQ(c.show(), "2*ts + m*(2*tw + 3)");
  const Cost just_m{.logp_m = 4};
  EXPECT_EQ(just_m.show(), "m*(4)");
  const Cost one{.logp_ts = 1, .logp_mtw = 1};
  EXPECT_EQ(one.show(), "ts + m*(tw)");
}

TEST(CostAlgebra, SumAndDifference) {
  const Cost a{.logp_ts = 1, .logp_mtw = 2, .logp_m = 3};
  const Cost b{.logp_ts = 1, .logp_mtw = 1, .logp_m = 1};
  EXPECT_EQ((a + b).logp_mtw, 3);
  EXPECT_EQ((a - b).logp_m, 2);
}

// --- Table 1, row by row --------------------------------------------------
// Each check: (time before)*log p, (time after)*log p, "Improved if".

struct Table1Row {
  std::string rule;
  Cost before, after;
  std::string improved_if;
};

void expect_row(const RulePtr& rule, const Program& lhs, const Cost& before,
                const Cost& after, const std::string& improved) {
  Cost got_after;
  const Cost got_before = lhs_rhs_cost(rule, lhs, &got_after);
  EXPECT_EQ(got_before, before) << rule->name() << " before: got "
                                << got_before.show();
  EXPECT_EQ(got_after, after) << rule->name() << " after: got "
                              << got_after.show();
  EXPECT_EQ(improvement_condition(got_before, got_after), improved)
      << rule->name();
}

TEST(Table1, Sr2Reduction) {
  Program lhs;
  lhs.scan(ir::op_mul()).reduce(ir::op_add());
  expect_row(rules::rule_sr2_reduction(), lhs,
             {.logp_ts = 2, .logp_mtw = 2, .logp_m = 3},
             {.logp_ts = 1, .logp_mtw = 2, .logp_m = 3}, "always");
}

TEST(Table1, SrReduction) {
  Program lhs;
  lhs.scan(ir::op_add()).reduce(ir::op_add());
  expect_row(rules::rule_sr_reduction(), lhs,
             {.logp_ts = 2, .logp_mtw = 2, .logp_m = 3},
             {.logp_ts = 1, .logp_mtw = 2, .logp_m = 4}, "ts > m");
}

TEST(Table1, Ss2Scan) {
  Program lhs;
  lhs.scan(ir::op_mul()).scan(ir::op_add());
  expect_row(rules::rule_ss2_scan(), lhs,
             {.logp_ts = 2, .logp_mtw = 2, .logp_m = 4},
             {.logp_ts = 1, .logp_mtw = 2, .logp_m = 6}, "ts > 2*m");
}

TEST(Table1, SsScan) {
  Program lhs;
  lhs.scan(ir::op_add()).scan(ir::op_add());
  expect_row(rules::rule_ss_scan(), lhs,
             {.logp_ts = 2, .logp_mtw = 2, .logp_m = 4},
             {.logp_ts = 1, .logp_mtw = 3, .logp_m = 8}, "ts > m*(tw + 4)");
}

TEST(Table1, BsComcast) {
  Program lhs;
  lhs.bcast().scan(ir::op_add());
  expect_row(rules::rule_bs_comcast(), lhs,
             {.logp_ts = 2, .logp_mtw = 2, .logp_m = 2},
             {.logp_ts = 1, .logp_mtw = 1, .logp_m = 2}, "always");
}

TEST(Table1, Bss2Comcast) {
  Program lhs;
  lhs.bcast().scan(ir::op_mul()).scan(ir::op_add());
  expect_row(rules::rule_bss2_comcast(), lhs,
             {.logp_ts = 3, .logp_mtw = 3, .logp_m = 4},
             {.logp_ts = 1, .logp_mtw = 1, .logp_m = 5}, "tw + ts/m > 0.5");
}

TEST(Table1, BssComcast) {
  Program lhs;
  lhs.bcast().scan(ir::op_add()).scan(ir::op_add());
  expect_row(rules::rule_bss_comcast(), lhs,
             {.logp_ts = 3, .logp_mtw = 3, .logp_m = 4},
             {.logp_ts = 1, .logp_mtw = 1, .logp_m = 8}, "tw + ts/m > 2");
}

TEST(Table1, BrLocal) {
  Program lhs;
  lhs.bcast().reduce(ir::op_add());
  expect_row(rules::rule_br_local(), lhs,
             {.logp_ts = 2, .logp_mtw = 2, .logp_m = 1}, {.logp_m = 1},
             "always");
}

TEST(Table1, Bsr2Local) {
  Program lhs;
  lhs.bcast().scan(ir::op_mul()).reduce(ir::op_add());
  expect_row(rules::rule_bsr2_local(), lhs,
             {.logp_ts = 3, .logp_mtw = 3, .logp_m = 3}, {.logp_m = 3},
             "always");
}

TEST(Table1, BsrLocal) {
  Program lhs;
  lhs.bcast().scan(ir::op_add()).reduce(ir::op_add());
  Cost after;
  const Cost before = lhs_rhs_cost(rules::rule_bsr_local(), lhs, &after);
  EXPECT_EQ(before, (Cost{.logp_ts = 3, .logp_mtw = 3, .logp_m = 3}));
  EXPECT_EQ(after, (Cost{.logp_m = 4}));
  // Paper: improved iff tw + ts/m >= 1/3.
  const std::string cond = improvement_condition(before, after);
  EXPECT_TRUE(cond.rfind("tw + ts/m > 0.333", 0) == 0) << cond;
}

TEST(Table1, CrAlllocal) {
  // Not tabulated in the paper but follows the same calculus:
  // 2ts + m(2tw+1)  ->  ts + m(tw+1).
  Program lhs;
  lhs.bcast().allreduce(ir::op_add());
  expect_row(rules::rule_cr_alllocal(), lhs,
             {.logp_ts = 2, .logp_mtw = 2, .logp_m = 1},
             {.logp_ts = 1, .logp_mtw = 1, .logp_m = 1}, "always");
}

// --- Section 4.2: the worked SS2-Scan example -----------------------------

TEST(Section42, Ss2CrossoverIsTwoM) {
  Program lhs;
  lhs.scan(ir::op_mul()).scan(ir::op_add());
  Cost after;
  const Cost before = lhs_rhs_cost(rules::rule_ss2_scan(), lhs, &after);
  for (double m : {1.0, 10.0, 1000.0}) {
    for (double tw : {1.0, 3.0}) {
      EXPECT_DOUBLE_EQ(ts_crossover(before, after, m, tw), 2 * m);
    }
  }
}

TEST(Section42, RulePaysOffExactlyWhenTsExceedsTwoM) {
  Program lhs;
  lhs.scan(ir::op_mul()).scan(ir::op_add());
  const Program rhs = rules::rule_ss2_scan()->match(lhs, 0)->apply(lhs);
  const double m = 64;
  for (double ts : {10.0, 100.0, 127.0, 129.0, 1000.0}) {
    const Machine mach{.p = 16, .m = m, .ts = ts, .tw = 2};
    const bool improves = program_time(rhs, mach) < program_time(lhs, mach);
    EXPECT_EQ(improves, ts > 2 * m) << "ts=" << ts;
  }
}

TEST(Crossovers, AlwaysRulesHaveNoPositiveCrossover) {
  Program lhs;
  lhs.bcast().scan(ir::op_add());
  Cost after;
  const Cost before = lhs_rhs_cost(rules::rule_bs_comcast(), lhs, &after);
  // Improves for every ts >= 0.
  EXPECT_LE(ts_crossover(before, after, 100, 2), 0.0);
}

TEST(ImprovementCondition, NeverWhenAfterDominates) {
  const Cost before{.logp_ts = 1, .logp_mtw = 1, .logp_m = 1};
  const Cost after{.logp_ts = 2, .logp_mtw = 1, .logp_m = 2};
  EXPECT_EQ(improvement_condition(before, after), "never");
}

TEST(ImprovementCondition, AlwaysWhenAfterStrictlyCheaper) {
  const Cost before{.logp_ts = 2, .logp_mtw = 2, .logp_m = 1};
  const Cost after{.logp_ts = 1, .logp_mtw = 2, .logp_m = 1};
  EXPECT_EQ(improvement_condition(before, after), "always");
}

TEST(ImprovementCondition, EqualCostProgramsNeverImprove) {
  // "Improved if" is a STRICT inequality: a rewrite to an identical cost
  // must not be reported as an improvement.
  const Cost c{.logp_ts = 1, .logp_mtw = 1, .logp_m = 2};
  EXPECT_EQ(improvement_condition(c, c), "never");
  EXPECT_EQ(ts_crossover(c, c, 64, 2),
            std::numeric_limits<double>::infinity());
}

TEST(Crossovers, NoStartupDeltaDegeneratesToAllOrNothing) {
  // d.logp_ts == 0: the threshold is not a ts value at all — the verdict
  // is the sign of the remaining terms, encoded as -inf (always) / +inf
  // (never).
  const Cost before{.logp_ts = 1, .logp_mtw = 1, .logp_m = 2};
  const Cost cheaper{.logp_ts = 1, .logp_mtw = 1, .logp_m = 1};
  EXPECT_EQ(ts_crossover(before, cheaper, 64, 2),
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ(ts_crossover(cheaper, before, 64, 2),
            std::numeric_limits<double>::infinity());
}

TEST(Crossovers, ZeroBlockSizeLeavesOnlyTheStartupTerm) {
  // At m = 0 every m-proportional saving vanishes: SS2-Scan (saves one
  // start-up per phase, pays 2m ops) improves for every ts > 0.
  Program lhs;
  lhs.scan(ir::op_mul()).scan(ir::op_add());
  Cost after;
  const Cost before = lhs_rhs_cost(rules::rule_ss2_scan(), lhs, &after);
  EXPECT_DOUBLE_EQ(ts_crossover(before, after, 0, 2), 0.0);
  // And the improvement condition at m = 0 follows from its ts > 2m form.
  EXPECT_EQ(improvement_condition(before, after), "ts > 2*m");
}

TEST(Crossovers, ZeroBlockZeroDeltaIsNever) {
  // m = 0 AND no start-up delta: nothing left to trade; never improves.
  const Cost before{.logp_ts = 1, .logp_mtw = 2, .logp_m = 3};
  const Cost after{.logp_ts = 1, .logp_mtw = 1, .logp_m = 1};
  EXPECT_EQ(ts_crossover(before, after, 0, 2),
            std::numeric_limits<double>::infinity());
}

}  // namespace
}  // namespace colop::model
