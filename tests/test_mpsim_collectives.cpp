// Collective operations vs the paper's list semantics (Eqs 5-8),
// parameterized over processor counts including non-powers of two
// (the paper deliberately illustrates with 6 processors).

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "colop/mpsim/mpsim.h"
#include "colop/support/rng.h"

namespace colop::mpsim {
namespace {

using i64 = std::int64_t;

std::vector<i64> random_inputs(int p, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<i64> xs(static_cast<std::size_t>(p));
  for (auto& x : xs) x = rng.uniform(-50, 50);
  return xs;
}

// Reference semantics from the paper.
std::vector<i64> ref_scan(const std::vector<i64>& xs, auto op) {
  std::vector<i64> out(xs.size());
  i64 acc = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    acc = i == 0 ? xs[i] : op(acc, xs[i]);
    out[i] = acc;
  }
  return out;
}

i64 ref_reduce(const std::vector<i64>& xs, auto op) {
  i64 acc = xs[0];
  for (std::size_t i = 1; i < xs.size(); ++i) acc = op(acc, xs[i]);
  return acc;
}

class CollectivesP : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(ProcessorCounts, CollectivesP,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12,
                                           13, 16, 17, 24, 31, 32, 33, 64),
                         [](const auto& pinfo) {
                           return "p" + std::to_string(pinfo.param);
                         });

TEST_P(CollectivesP, BcastBinomialFromRankZero) {
  const int p = GetParam();
  auto out = run_spmd_collect<i64>(p, [](Comm& comm) {
    const i64 mine = comm.rank() == 0 ? 42 : -1;
    return bcast(comm, mine);
  });
  for (int r = 0; r < p; ++r) EXPECT_EQ(out[static_cast<std::size_t>(r)], 42) << "rank " << r;
}

TEST_P(CollectivesP, BcastButterflyFromRankZero) {
  const int p = GetParam();
  auto out = run_spmd_collect<i64>(p, [](Comm& comm) {
    const i64 mine = comm.rank() == 0 ? 37 : -1;
    return bcast(comm, mine, 0, BcastAlgo::butterfly);
  });
  for (int r = 0; r < p; ++r) EXPECT_EQ(out[static_cast<std::size_t>(r)], 37) << "rank " << r;
}

TEST_P(CollectivesP, BcastFromNonzeroRoot) {
  const int p = GetParam();
  const int root = (p - 1) / 2;
  for (auto algo : {BcastAlgo::binomial, BcastAlgo::butterfly}) {
    auto out = run_spmd_collect<i64>(p, [&](Comm& comm) {
      const i64 mine = comm.rank() == root ? 7 : -1;
      return bcast(comm, mine, root, algo);
    });
    for (int r = 0; r < p; ++r) EXPECT_EQ(out[static_cast<std::size_t>(r)], 7) << "rank " << r;
  }
}

TEST_P(CollectivesP, BcastOfBlocks) {
  const int p = GetParam();
  std::vector<double> block(64);
  std::iota(block.begin(), block.end(), 0.5);
  auto out = run_spmd_collect<std::vector<double>>(p, [&](Comm& comm) {
    return bcast(comm, comm.rank() == 0 ? block : std::vector<double>{});
  });
  for (int r = 0; r < p; ++r) EXPECT_EQ(out[static_cast<std::size_t>(r)], block);
}

TEST_P(CollectivesP, ReduceSumToRootKeepsOthersUnchanged) {
  const int p = GetParam();
  const auto xs = random_inputs(p, 101);
  const auto plus = [](i64 a, i64 b) { return a + b; };
  auto out = run_spmd_collect<i64>(p, [&](Comm& comm) {
    return reduce(comm, xs[static_cast<std::size_t>(comm.rank())], plus);
  });
  EXPECT_EQ(out[0], ref_reduce(xs, plus));
  // Eq 5: non-root elements keep their input.
  for (int r = 1; r < p; ++r) EXPECT_EQ(out[static_cast<std::size_t>(r)], xs[static_cast<std::size_t>(r)]);
}

TEST_P(CollectivesP, ReduceToNonzeroRoot) {
  const int p = GetParam();
  const int root = p - 1;
  const auto xs = random_inputs(p, 202);
  const auto plus = [](i64 a, i64 b) { return a + b; };
  auto out = run_spmd_collect<i64>(p, [&](Comm& comm) {
    return reduce(comm, xs[static_cast<std::size_t>(comm.rank())], plus, root);
  });
  EXPECT_EQ(out[static_cast<std::size_t>(root)], ref_reduce(xs, plus));
  for (int r = 0; r < p; ++r)
    if (r != root) { EXPECT_EQ(out[static_cast<std::size_t>(r)], xs[static_cast<std::size_t>(r)]); }
}

TEST_P(CollectivesP, ReduceNonCommutativeStringConcat) {
  // String concatenation is associative but NOT commutative: this pins down
  // that every schedule combines strictly in rank order.
  const int p = GetParam();
  auto out = run_spmd_collect<std::string>(p, [](Comm& comm) {
    return reduce(comm, std::string(1, static_cast<char>('a' + comm.rank() % 26)),
                  [](std::string a, const std::string& b) { return std::move(a) += b; });
  });
  std::string expect;
  for (int r = 0; r < p; ++r) expect += static_cast<char>('a' + r % 26);
  EXPECT_EQ(out[0], expect);
}

TEST_P(CollectivesP, AllreduceSum) {
  const int p = GetParam();
  const auto xs = random_inputs(p, 303);
  const auto plus = [](i64 a, i64 b) { return a + b; };
  auto out = run_spmd_collect<i64>(p, [&](Comm& comm) {
    return allreduce(comm, xs[static_cast<std::size_t>(comm.rank())], plus);
  });
  const i64 total = ref_reduce(xs, plus);
  for (int r = 0; r < p; ++r) EXPECT_EQ(out[static_cast<std::size_t>(r)], total) << "rank " << r;
}

TEST_P(CollectivesP, AllreduceNonCommutativeStringConcat) {
  const int p = GetParam();
  auto out = run_spmd_collect<std::string>(p, [](Comm& comm) {
    return allreduce(comm, std::string(1, static_cast<char>('A' + comm.rank() % 26)),
                     [](std::string a, const std::string& b) { return std::move(a) += b; });
  });
  std::string expect;
  for (int r = 0; r < p; ++r) expect += static_cast<char>('A' + r % 26);
  for (int r = 0; r < p; ++r) EXPECT_EQ(out[static_cast<std::size_t>(r)], expect) << "rank " << r;
}

TEST_P(CollectivesP, AllreduceMin) {
  const int p = GetParam();
  const auto xs = random_inputs(p, 404);
  auto out = run_spmd_collect<i64>(p, [&](Comm& comm) {
    return allreduce(comm, xs[static_cast<std::size_t>(comm.rank())],
                     [](i64 a, i64 b) { return std::min(a, b); });
  });
  const i64 expect = *std::min_element(xs.begin(), xs.end());
  for (int r = 0; r < p; ++r) EXPECT_EQ(out[static_cast<std::size_t>(r)], expect);
}

TEST_P(CollectivesP, ScanButterflySum) {
  const int p = GetParam();
  const auto xs = random_inputs(p, 505);
  const auto plus = [](i64 a, i64 b) { return a + b; };
  auto out = run_spmd_collect<i64>(p, [&](Comm& comm) {
    return scan(comm, xs[static_cast<std::size_t>(comm.rank())], plus);
  });
  EXPECT_EQ(out, ref_scan(xs, plus));
}

TEST_P(CollectivesP, ScanDoublingSum) {
  const int p = GetParam();
  const auto xs = random_inputs(p, 606);
  const auto plus = [](i64 a, i64 b) { return a + b; };
  auto out = run_spmd_collect<i64>(p, [&](Comm& comm) {
    return scan(comm, xs[static_cast<std::size_t>(comm.rank())], plus, ScanAlgo::doubling);
  });
  EXPECT_EQ(out, ref_scan(xs, plus));
}

TEST_P(CollectivesP, ScanNonCommutativeStringConcat) {
  const int p = GetParam();
  for (auto algo : {ScanAlgo::butterfly, ScanAlgo::doubling}) {
    auto out = run_spmd_collect<std::string>(p, [&](Comm& comm) {
      return scan(comm, std::string(1, static_cast<char>('a' + comm.rank() % 26)),
                  [](std::string a, const std::string& b) { return std::move(a) += b; },
                  algo);
    });
    std::string expect;
    for (int r = 0; r < p; ++r) {
      expect += static_cast<char>('a' + r % 26);
      EXPECT_EQ(out[static_cast<std::size_t>(r)], expect) << "rank " << r;
    }
  }
}

TEST_P(CollectivesP, ScanMax) {
  const int p = GetParam();
  const auto xs = random_inputs(p, 707);
  const auto mx = [](i64 a, i64 b) { return std::max(a, b); };
  auto out = run_spmd_collect<i64>(p, [&](Comm& comm) {
    return scan(comm, xs[static_cast<std::size_t>(comm.rank())], mx);
  });
  EXPECT_EQ(out, ref_scan(xs, mx));
}

TEST_P(CollectivesP, ComcastNaiveRepeatAndCostoptAgree) {
  // Comcast target pattern: [b,_,...,_] -> [b, g b, ..., g^(n-1) b] with
  // g = (+b).  All three implementations must produce the identical list.
  const int p = GetParam();
  const i64 b = 5;
  auto pairi = [](i64 v) { return std::make_pair(v, v); };
  auto e = [](std::pair<i64, i64> s) { return std::make_pair(s.first, s.second + s.second); };
  auto o = [](std::pair<i64, i64> s) {
    return std::make_pair(s.first + s.second, s.second + s.second);
  };
  auto fst = [](std::pair<i64, i64> s) { return s.first; };

  auto naive = run_spmd_collect<i64>(p, [&](Comm& comm) {
    return comcast_naive(comm, comm.rank() == 0 ? b : -1,
                         [&](i64 v) { return v + b; });
  });
  auto rep = run_spmd_collect<i64>(p, [&](Comm& comm) {
    return comcast_repeat(comm, comm.rank() == 0 ? b : -1, pairi, e, o, fst);
  });
  auto opt = run_spmd_collect<i64>(p, [&](Comm& comm) {
    return comcast_costopt(comm, comm.rank() == 0 ? b : -1, pairi, e, o, fst);
  });

  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(naive[static_cast<std::size_t>(r)], b * (r + 1)) << "rank " << r;
    EXPECT_EQ(rep[static_cast<std::size_t>(r)], b * (r + 1)) << "rank " << r;
    EXPECT_EQ(opt[static_cast<std::size_t>(r)], b * (r + 1)) << "rank " << r;
  }
}

TEST_P(CollectivesP, BackToBackCollectivesWithoutBarrier) {
  // The paper stresses that no synchronization is required between
  // successive collective stages; pipelined scans+reduce must not
  // cross-talk thanks to per-call tag sequencing.
  const int p = GetParam();
  const auto xs = random_inputs(p, 808);
  const auto plus = [](i64 a, i64 b) { return a + b; };
  auto out = run_spmd_collect<i64>(p, [&](Comm& comm) {
    i64 v = xs[static_cast<std::size_t>(comm.rank())];
    v = scan(comm, v, plus);
    v = scan(comm, v, plus);
    return reduce(comm, v, plus);
  });
  auto s = ref_scan(ref_scan(xs, plus), plus);
  EXPECT_EQ(out[0], ref_reduce(s, plus));
}

TEST(CollectivesTraffic, BcastBinomialMessageCount) {
  // A binomial broadcast sends exactly p-1 messages.
  for (int p : {2, 3, 6, 8, 13, 16}) {
    auto counters = run_spmd_traffic(p, [&](Comm& comm) {
      (void)bcast(comm, comm.rank() == 0 ? 1 : 0);
    });
    EXPECT_EQ(counters.messages, static_cast<std::uint64_t>(p - 1)) << "p=" << p;
  }
}

TEST(CollectivesTraffic, ScanButterflyMessageCount) {
  // Butterfly scan: each phase k exchanges messages pairwise between all
  // ranks whose partner exists -> sum over phases of #(ranks with partner).
  for (int p : {2, 4, 6, 8, 16}) {
    auto counters = run_spmd_traffic(p, [&](Comm& comm) {
      (void)scan(comm, static_cast<i64>(comm.rank()), [](i64 a, i64 b) { return a + b; });
    });
    std::uint64_t expect = 0;
    for (int k = 0; (1 << k) < p; ++k)
      for (int r = 0; r < p; ++r)
        if ((r ^ (1 << k)) < p) ++expect;
    EXPECT_EQ(counters.messages, expect) << "p=" << p;
  }
}

TEST(CollectivesEdge, AllCollectivesAtPEqualsOne) {
  auto out = run_spmd_collect<i64>(1, [](Comm& comm) {
    const auto plus = [](i64 a, i64 b) { return a + b; };
    i64 v = 9;
    v = bcast(comm, v);
    v = reduce(comm, v, plus);
    v = allreduce(comm, v, plus);
    v = scan(comm, v, plus);
    return v;
  });
  EXPECT_EQ(out[0], 9);
}

}  // namespace
}  // namespace colop::mpsim
