// The observability core: the process-wide sink registry (a no-op when
// disabled), in-memory and ring sinks, span pairing, the Chrome
// trace-event exporter validated by round-tripping through the strict
// JSON parser, and the metrics registry with its counter-sink adapter.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "colop/obs/chrome_trace.h"
#include "colop/obs/json.h"
#include "colop/obs/metrics.h"
#include "colop/obs/sink.h"
#include "colop/support/error.h"

namespace colop::obs {
namespace {

TEST(ObsSink, DisabledByDefaultAndAllEmittersAreNoops) {
  ASSERT_EQ(current_sink(), nullptr);
  EXPECT_FALSE(enabled());
  Event ev;
  ev.name = "orphan";
  record(ev);
  instant("orphan", "test");
  counter("orphan", "test", 1.0);
  { ScopedSpan span("orphan", "test"); }
  EXPECT_FALSE(enabled());
}

TEST(ObsSink, ScopedSinkInstallsNestsRestoresAndFlushes) {
  class CountingSink : public Sink {
   public:
    void record(const Event&) override { ++records; }
    void flush() override { ++flushes; }
    int records = 0;
    int flushes = 0;
  };
  CountingSink outer, inner;
  {
    ScopedSink so(outer);
    EXPECT_TRUE(enabled());
    EXPECT_EQ(current_sink(), &outer);
    instant("a", "test");
    {
      ScopedSink si(inner);
      EXPECT_EQ(current_sink(), &inner);
      instant("b", "test");
    }
    EXPECT_EQ(current_sink(), &outer);
    EXPECT_EQ(inner.flushes, 1);
    instant("c", "test");
  }
  EXPECT_EQ(current_sink(), nullptr);
  EXPECT_FALSE(enabled());
  EXPECT_EQ(outer.records, 2);
  EXPECT_EQ(outer.flushes, 1);
  EXPECT_EQ(inner.records, 1);
}

TEST(ObsSink, ScopedSpanEmitsPairedBeginEnd) {
  MemorySink sink;
  {
    ScopedSink s(sink);
    ScopedSpan span("work", "test", 3);
    instant("inside", "test", 3);
  }
  const auto evs = sink.events();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs[0].phase, Phase::begin);
  EXPECT_EQ(evs[0].name, "work");
  EXPECT_EQ(evs[0].cat, "test");
  EXPECT_EQ(evs[0].tid, 3);
  EXPECT_EQ(evs[1].phase, Phase::instant);
  EXPECT_EQ(evs[2].phase, Phase::end);
  EXPECT_EQ(evs[2].name, "work");
  EXPECT_EQ(evs[2].tid, 3);
  EXPECT_GE(evs[2].ts, evs[0].ts);
}

TEST(ObsSink, SpanDisarmedAtConstructionNeverEmitsADanglingEnd) {
  // A span that began while tracing was off must stay silent even if a
  // sink appears before it ends: B/E events have to pair up.
  MemorySink sink;
  auto span = std::make_unique<ScopedSpan>("late", "test");
  ScopedSink s(sink);
  span.reset();
  EXPECT_EQ(sink.size(), 0u);
}

TEST(ObsSink, RingSinkKeepsNewestAndCountsDropped) {
  RingSink ring(3);
  for (int i = 0; i < 5; ++i) {
    Event ev;
    ev.name = "e" + std::to_string(i);
    ring.record(ev);
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.dropped(), 2u);
  const auto evs = ring.events();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs.front().name, "e2");
  EXPECT_EQ(evs.back().name, "e4");
}

TEST(ObsJson, ParsesScalarsStringsArraysObjects) {
  const auto v = json::parse(
      R"({"a":[1,2.5,-3e2],"s":"x\n\"y\"","t":true,"n":null})");
  ASSERT_TRUE(v.is(json::Value::Type::object));
  const auto* a = v.get("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is(json::Value::Type::array));
  ASSERT_EQ(a->items.size(), 3u);
  EXPECT_DOUBLE_EQ(a->items[0]->num, 1.0);
  EXPECT_DOUBLE_EQ(a->items[1]->num, 2.5);
  EXPECT_DOUBLE_EQ(a->items[2]->num, -300.0);
  ASSERT_NE(v.get("s"), nullptr);
  EXPECT_EQ(v.get("s")->str, "x\n\"y\"");
  ASSERT_NE(v.get("t"), nullptr);
  EXPECT_TRUE(v.get("t")->b);
  ASSERT_NE(v.get("n"), nullptr);
  EXPECT_TRUE(v.get("n")->is(json::Value::Type::null));
}

TEST(ObsJson, QuoteEscapeRoundTripsThroughTheParser) {
  const std::string nasty = "a\"b\\c\nd\te\x01f";
  const auto v = json::parse(json::quote(nasty));
  ASSERT_TRUE(v.is(json::Value::Type::string));
  EXPECT_EQ(v.str, nasty);
}

TEST(ObsJson, RejectsMalformedDocuments) {
  EXPECT_THROW((void)json::parse("{\"a\":1"), Error);
  EXPECT_THROW((void)json::parse("nope"), Error);
  EXPECT_THROW((void)json::parse("{} trailing"), Error);
  EXPECT_THROW((void)json::parse(""), Error);
}

std::vector<Event> sample_events() {
  std::vector<Event> evs;
  Event b;
  b.phase = Phase::begin;
  b.name = "stage";
  b.cat = "exec";
  b.ts = 10;
  b.tid = 0;
  evs.push_back(b);
  Event e = b;
  e.phase = Phase::end;
  e.ts = 25;
  evs.push_back(e);
  Event x;
  x.phase = Phase::complete;
  x.name = "compute";
  x.cat = "simnet";
  x.ts = 12;
  x.dur = 8;
  x.tid = 2;
  evs.push_back(x);
  Event i;
  i.phase = Phase::instant;
  i.name = "send";
  i.cat = "mpsim";
  i.ts = 13;
  i.tid = 2;
  i.args.emplace_back("dest", "3");
  evs.push_back(i);
  Event c;
  c.phase = Phase::counter;
  c.name = "messages";
  c.cat = "mpsim";
  c.ts = 14;
  c.value = 42;
  evs.push_back(c);
  return evs;
}

TEST(ObsChromeTrace, ExportRoundTripsThroughTheStrictParser) {
  std::ostringstream os;
  write_chrome_trace(sample_events(), os, "proc", "rank");
  const auto doc = json::parse(os.str());
  ASSERT_TRUE(doc.is(json::Value::Type::object));
  const auto* evs = doc.get("traceEvents");
  ASSERT_NE(evs, nullptr);
  ASSERT_TRUE(evs->is(json::Value::Type::array));

  std::map<std::string, int> phases;
  for (const auto& item : evs->items) {
    ASSERT_TRUE(item->is(json::Value::Type::object));
    const auto* name = item->get("name");
    ASSERT_NE(name, nullptr);
    EXPECT_TRUE(name->is(json::Value::Type::string));
    const auto* ph = item->get("ph");
    ASSERT_NE(ph, nullptr);
    const std::string code = ph->str;
    EXPECT_TRUE(code == "B" || code == "E" || code == "X" || code == "i" ||
                code == "C" || code == "M")
        << code;
    ASSERT_NE(item->get("pid"), nullptr);
    ASSERT_NE(item->get("tid"), nullptr);
    if (code != "M") {
      const auto* ts = item->get("ts");
      ASSERT_NE(ts, nullptr);
      EXPECT_TRUE(ts->is(json::Value::Type::number));
      ASSERT_NE(item->get("cat"), nullptr);
    }
    if (code == "X") {
      const auto* dur = item->get("dur");
      ASSERT_NE(dur, nullptr);
      EXPECT_DOUBLE_EQ(dur->num, 8.0);
    }
    if (code == "C") {
      const auto* args = item->get("args");
      ASSERT_NE(args, nullptr);
      ASSERT_NE(args->get("messages"), nullptr);
      EXPECT_DOUBLE_EQ(args->get("messages")->num, 42.0);
    }
    ++phases[code];
  }
  // One process_name plus one thread_name and one thread_sort_index per
  // distinct tid {0, 2}.
  EXPECT_EQ(phases["M"], 5);
  EXPECT_EQ(phases["B"], 1);
  EXPECT_EQ(phases["E"], 1);
  EXPECT_EQ(phases["X"], 1);
  EXPECT_EQ(phases["i"], 1);
  EXPECT_EQ(phases["C"], 1);
}

TEST(ObsChromeTrace, MetadataNamesProcessAndThreads) {
  std::ostringstream os;
  write_chrome_trace(sample_events(), os, "proc", "rank");
  const auto doc = json::parse(os.str());
  const auto* evs = doc.get("traceEvents");
  ASSERT_NE(evs, nullptr);
  bool proc_named = false, thread2_named = false, thread2_sorted = false;
  for (const auto& item : evs->items) {
    if (item->get("ph")->str != "M") continue;
    const auto* args = item->get("args");
    ASSERT_NE(args, nullptr);
    if (item->get("name")->str == "thread_sort_index") {
      const auto* idx = args->get("sort_index");
      ASSERT_NE(idx, nullptr);
      if (item->get("tid")->num == 2.0) thread2_sorted = idx->num == 2.0;
      continue;
    }
    const auto* nm = args->get("name");
    ASSERT_NE(nm, nullptr);
    if (item->get("name")->str == "process_name")
      proc_named = nm->str == "proc";
    if (item->get("name")->str == "thread_name" &&
        item->get("tid")->num == 2.0)
      thread2_named = nm->str == "rank2";
  }
  EXPECT_TRUE(proc_named);
  EXPECT_TRUE(thread2_named);
  EXPECT_TRUE(thread2_sorted);
}

TEST(ObsChromeTrace, SinkBuffersAndWritesOnDemand) {
  ChromeTraceSink sink("colop-test");
  {
    ScopedSink s(sink);
    ScopedSpan span("outer", "test", 1);
    instant("tick", "test", 1);
  }
  EXPECT_EQ(sink.size(), 3u);
  std::ostringstream os;
  sink.write(os);
  const auto doc = json::parse(os.str());
  ASSERT_NE(doc.get("traceEvents"), nullptr);
  // 3 recorded events + process_name + one thread row (tid 1) with its
  // thread_name and thread_sort_index metadata.
  EXPECT_EQ(doc.get("traceEvents")->items.size(), 6u);
}

TEST(ObsMetrics, ScalarsAndSeriesExportAsJson) {
  MetricsRegistry reg;
  reg.set("a", 1.5);
  reg.add("a", 0.5);
  reg.add("b", 2);
  EXPECT_TRUE(reg.has("a"));
  EXPECT_FALSE(reg.has("missing"));
  EXPECT_DOUBLE_EQ(reg.get("a"), 2.0);
  EXPECT_DOUBLE_EQ(reg.get("b"), 2.0);
  reg.add_row("runs", {{"p", 4}, {"t", 9}});
  reg.add_row("runs", {{"p", 8}, {"t", 5}});

  std::ostringstream js;
  reg.write_json(js);
  const auto doc = json::parse(js.str());
  const auto* scalars = doc.get("scalars");
  ASSERT_NE(scalars, nullptr);
  ASSERT_NE(scalars->get("a"), nullptr);
  EXPECT_DOUBLE_EQ(scalars->get("a")->num, 2.0);
  const auto* series = doc.get("series");
  ASSERT_NE(series, nullptr);
  const auto* runs = series->get("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->items.size(), 2u);
  ASSERT_NE(runs->items[1]->get("p"), nullptr);
  EXPECT_DOUBLE_EQ(runs->items[1]->get("p")->num, 8.0);
  EXPECT_DOUBLE_EQ(runs->items[1]->get("t")->num, 5.0);
}

TEST(ObsMetrics, CsvExportListsSeriesColumns) {
  MetricsRegistry reg;
  reg.add_row("runs", {{"p", 4}, {"t", 9}});
  reg.add_row("runs", {{"p", 8}, {"t", 5}});
  std::ostringstream cs;
  reg.write_csv(cs);
  const std::string out = cs.str();
  EXPECT_NE(out.find("p"), std::string::npos);
  EXPECT_NE(out.find("t"), std::string::npos);
  EXPECT_NE(out.find("8"), std::string::npos);
}

TEST(ObsMetrics, CounterSinkFoldsCounterEventsOnly) {
  MetricsRegistry reg;
  CounterSink sink(reg);
  {
    ScopedSink s(sink);
    counter("msgs", "test", 3);
    counter("msgs", "test", 4);
    instant("noise", "test");
  }
  EXPECT_DOUBLE_EQ(reg.get("msgs"), 7.0);
  EXPECT_FALSE(reg.has("noise"));
}

}  // namespace
}  // namespace colop::obs
