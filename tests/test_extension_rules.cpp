// The derived combination rules beyond the paper's Table (Section 6 hints
// at the input/output-behaviour analysis): RB-Allreduce, SB-Elim, BB-Elim
// and the enabling MB-Swap — semantics, matching, and their interplay with
// the exhaustive optimizer.

#include <gtest/gtest.h>

#include "colop/exec/thread_executor.h"
#include "colop/ir/ir.h"
#include "colop/rules/optimizer.h"
#include "colop/support/rng.h"

namespace colop::rules {
namespace {

using ir::Dist;
using ir::Program;
using ir::Value;

Dist random_dist(int p, std::uint64_t seed, std::int64_t lo = -30,
                 std::int64_t hi = 30) {
  Rng rng(seed);
  Dist d(static_cast<std::size_t>(p));
  for (auto& b : d) {
    b.resize(2);
    for (auto& v : b) v = Value(rng.uniform(lo, hi));
  }
  return d;
}

class ExtensionRulesP : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(ProcessorCounts, ExtensionRulesP,
                         ::testing::Values(1, 2, 3, 5, 6, 8, 13, 16),
                         [](const auto& pinfo) {
                           return "p" + std::to_string(pinfo.param);
                         });

TEST_P(ExtensionRulesP, RbAllreduceIsFullEquality) {
  const int p = GetParam();
  for (int root : {0, p / 2}) {
    Program lhs;
    lhs.reduce(ir::op_add(), root).bcast(root);
    auto m = rule_rb_allreduce()->match(lhs, 0);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->equivalence, Equivalence::full);
    const Program rhs = m->apply(lhs);
    EXPECT_EQ(rhs.show(), "allreduce(+)");
    const Dist in = random_dist(p, 31);
    EXPECT_EQ(lhs.eval_reference(in), rhs.eval_reference(in));
    EXPECT_EQ(exec::run_on_threads(lhs, in), exec::run_on_threads(rhs, in));
  }
}

TEST_P(ExtensionRulesP, RbAllreduceBalancedVariant) {
  const int p = GetParam();
  Program scanred;
  scanred.scan(ir::op_add()).reduce(ir::op_add());
  Program lhs = rule_sr_reduction()->match(scanred, 0)->apply(scanred);
  lhs.bcast();  // ... ; reduce_balanced(op_sr) ; map(pi1) ; bcast
  // The bcast is after map(pi1): swap it forward first, then fuse.
  auto swap = rule_mb_swap()->match(lhs, 2);
  ASSERT_TRUE(swap.has_value());
  const Program swapped = swap->apply(lhs);
  auto fuse = rule_rb_allreduce()->match(swapped, 1);
  ASSERT_TRUE(fuse.has_value());
  const Program rhs = fuse->apply(swapped);
  EXPECT_EQ(rhs.collective_count(), 1u);

  Program direct;  // ground truth: scan ; reduce ; bcast
  direct.scan(ir::op_add()).reduce(ir::op_add()).bcast();
  const Dist in = random_dist(p, 32);
  EXPECT_EQ(direct.eval_reference(in), rhs.eval_reference(in));
}

TEST_P(ExtensionRulesP, SbElimIsFullEquality) {
  const int p = GetParam();
  Program lhs;
  lhs.scan(ir::op_mul()).bcast();
  auto m = rule_sb_elim()->match(lhs, 0);
  ASSERT_TRUE(m.has_value());
  const Program rhs = m->apply(lhs);
  EXPECT_EQ(rhs.show(), "bcast");
  const Dist in = random_dist(p, 33, -2, 2);
  EXPECT_EQ(lhs.eval_reference(in), rhs.eval_reference(in));
  EXPECT_EQ(exec::run_on_threads(lhs, in), exec::run_on_threads(rhs, in));
}

TEST(ExtensionRules, SbElimRequiresRootZero) {
  Program lhs;
  lhs.scan(ir::op_add()).bcast(1);
  EXPECT_FALSE(rule_sb_elim()->match(lhs, 0).has_value());
}

TEST_P(ExtensionRulesP, BbElimIsFullEquality) {
  const int p = GetParam();
  Program lhs;
  lhs.bcast(0).bcast(p - 1);  // different roots: still equivalent
  auto m = rule_bb_elim()->match(lhs, 0);
  ASSERT_TRUE(m.has_value());
  const Program rhs = m->apply(lhs);
  EXPECT_EQ(rhs.collective_count(), 1u);
  const Dist in = random_dist(p, 34);
  EXPECT_EQ(lhs.eval_reference(in), rhs.eval_reference(in));
}

TEST_P(ExtensionRulesP, MbSwapIsFullEquality) {
  const int p = GetParam();
  Program lhs;
  lhs.map({"sq", [](const Value& v) { return Value(v.as_int() * v.as_int()); }, 1})
      .bcast();
  auto m = rule_mb_swap()->match(lhs, 0);
  ASSERT_TRUE(m.has_value());
  const Program rhs = m->apply(lhs);
  EXPECT_EQ(rhs.stage(0).kind(), ir::Stage::Kind::Bcast);
  const Dist in = random_dist(p, 35);
  EXPECT_EQ(lhs.eval_reference(in), rhs.eval_reference(in));
  EXPECT_EQ(exec::run_on_threads(lhs, in), exec::run_on_threads(rhs, in));
}

TEST(ExtensionRules, MbSwapComputesPreMapWidth) {
  // pi1 shrinks the element from 2 words to 1: after the swap the bcast
  // must transmit 2 words (shape inference supplies the width).
  Program lhs;
  lhs.map(ir::fn_pair()).map(ir::fn_proj1()).bcast();
  auto m = rule_mb_swap()->match(lhs, 1);
  ASSERT_TRUE(m.has_value());
  const Program rhs = m->apply(lhs);
  const auto& bc = static_cast<const ir::BcastStage&>(rhs.stage(1));
  EXPECT_EQ(bc.words, 2);
  EXPECT_FALSE(ir::check_shapes(rhs).has_value());
}

TEST(ExtensionRules, MbSwapDoesNotTouchRankDependentMaps) {
  Program lhs;
  lhs.map_indexed({"f", [](int k, const Value& v) { return Value(v.as_int() + k); }})
      .bcast();
  for (std::size_t i = 0; i < lhs.size(); ++i)
    EXPECT_FALSE(rule_mb_swap()->match(lhs, i).has_value());
}

TEST(ExtensionRules, ExhaustiveSearchBeatsThePapersExampleDerivation) {
  // Example = map f ; scan(*) ; reduce(+) ; map g ; bcast.  The paper's
  // derivation stops at SR2-Reduction (reduce + bcast remain).  With the
  // enabling MB-Swap and RB-Allreduce, exhaustive search reaches
  //   map f ; map pair ; allreduce(op_sr2) ; map pi1 ; map g
  // — ONE collective operation instead of three, and a strictly better
  // predicted time than greedy's result.
  Program example;
  example
      .map({"f", [](const Value& v) { return Value(v.as_int() % 3); }, 1})
      .scan(ir::op_mul())
      .reduce(ir::op_add())
      .map({"g", [](const Value& v) { return Value(2 * v.as_int()); }, 1})
      .bcast();

  const model::Machine mach{.p = 16, .m = 64, .ts = 400, .tw = 2};
  const auto greedy = Optimizer(mach).optimize(example);
  const auto best = Optimizer(mach).optimize_exhaustive(example);
  EXPECT_LT(best.cost_final, greedy.cost_final);
  EXPECT_EQ(best.program.collective_count(), 1u);

  // And it is still a semantic equality on every rank (allreduce makes the
  // final state fully defined).
  const Dist in = random_dist(8, 36, -1, 1);
  EXPECT_EQ(example.eval_reference(in), best.program.eval_reference(in));
  EXPECT_EQ(exec::run_on_threads(example, in),
            exec::run_on_threads(best.program, in));
}

TEST(ExtensionRules, GreedyStillTerminatesWithCostNeutralRulesPresent) {
  Program p;
  p.map(ir::fn_id()).bcast().map(ir::fn_id()).bcast();
  const model::Machine mach{.p = 8, .m = 8, .ts = 100, .tw = 2};
  const auto res = Optimizer(mach).optimize(p);
  // BB-Elim is reachable after a swap; greedy only applies strict
  // improvements but must terminate regardless.
  EXPECT_LE(res.cost_final, res.cost_initial);
}

}  // namespace
}  // namespace colop::rules
