// Base operators: every DECLARED algebraic property is validated by the
// randomized checkers, and the checkers themselves detect non-properties.

#include <gtest/gtest.h>

#include "colop/ir/binop.h"

namespace colop::ir {
namespace {

TEST(BinOp, AddAndMulBasics) {
  EXPECT_EQ((*op_add())(Value(2), Value(3)), Value(5));
  EXPECT_EQ((*op_mul())(Value(2), Value(3)), Value(6));
  EXPECT_EQ((*op_add())(Value(2.5), Value(3)).as_real(), 5.5);  // widens
}

TEST(BinOp, UndefinedPropagates) {
  EXPECT_TRUE((*op_add())(Value::undefined(), Value(3)).is_undefined());
  EXPECT_TRUE((*op_mul())(Value(3), Value::undefined()).is_undefined());
}

TEST(BinOp, UnitsAreIdentities) {
  for (const auto& op : {op_add(), op_mul(), op_band(), op_bor(), op_gcd(),
                         op_modadd(97), op_modmul(97), op_mat2()}) {
    ASSERT_TRUE(op->unit().has_value()) << op->name();
    const Value u = *op->unit();
    Value x = op->name() == "mat2"
                  ? Value::tuple_of({Value(3), Value(1), Value(4), Value(1)})
                  : Value(std::int64_t{42});
    EXPECT_EQ((*op)(u, x), x) << op->name();
    EXPECT_EQ((*op)(x, u), x) << op->name();
  }
}

// Every declared property must hold under randomized checking.
TEST(BinOpProperties, DeclaredAssociativityHolds) {
  auto gen = small_int_gen(-30, 30);
  for (const auto& op : {op_add(), op_mul(), op_max(), op_min(), op_band(),
                         op_bor(), op_gcd(), op_modadd(11), op_modmul(11)}) {
    EXPECT_TRUE(check_associative(*op, gen)) << op->name();
  }
}

TEST(BinOpProperties, DeclaredCommutativityHolds) {
  auto gen = small_int_gen(-30, 30);
  for (const auto& op : {op_add(), op_mul(), op_max(), op_min(), op_band(),
                         op_bor(), op_gcd(), op_modadd(11), op_modmul(11)}) {
    EXPECT_TRUE(op->commutative()) << op->name();
    EXPECT_TRUE(check_commutative(*op, gen)) << op->name();
  }
}

TEST(BinOpProperties, DeclaredDistributivityHolds) {
  auto gen = small_int_gen(-20, 20);
  const std::vector<std::pair<BinOpPtr, BinOpPtr>> declared = {
      {op_mul(), op_add()},   {op_add(), op_max()},  {op_add(), op_min()},
      {op_max(), op_min()},   {op_min(), op_max()},  {op_max(), op_max()},
      {op_min(), op_min()},   {op_band(), op_bor()}, {op_bor(), op_band()},
      {op_band(), op_band()}, {op_bor(), op_bor()},  {op_gcd(), op_gcd()},
      {op_modmul(13), op_modadd(13)},
  };
  for (const auto& [times, plus] : declared) {
    EXPECT_TRUE(times->distributes_over(*plus))
        << times->name() << " over " << plus->name();
    EXPECT_TRUE(check_distributes_over(*times, *plus, gen))
        << times->name() << " over " << plus->name();
  }
}

TEST(BinOpProperties, CheckersDetectNonProperties) {
  auto gen = small_int_gen(-20, 20);
  // + does NOT distribute over * :  a + b*c != (a+b)*(a+c)
  EXPECT_FALSE(check_distributes_over(*op_add(), *op_mul(), gen));
  // max does NOT distribute over + : max(a, b+c) != max(a,b) + max(a,c)
  EXPECT_FALSE(check_distributes_over(*op_max(), *op_add(), gen));
  // a non-commutative op is flagged
  EXPECT_FALSE(check_commutative(*op_first(), gen));
}

TEST(BinOpProperties, Mat2IsAssociativeButNotCommutative) {
  auto gen = [](Rng& rng) {
    Tuple t;
    for (int i = 0; i < 4; ++i) t.emplace_back(rng.uniform(-5, 5));
    return Value(std::move(t));
  };
  EXPECT_TRUE(check_associative(*op_mat2(), gen));
  EXPECT_FALSE(check_commutative(*op_mat2(), gen));
  EXPECT_FALSE(op_mat2()->commutative());
}

TEST(BinOp, ModularOpsStayInRange) {
  auto ma = op_modadd(7);
  auto mm = op_modmul(7);
  EXPECT_EQ((*ma)(Value(-3), Value(-5)).as_int(), ((-8 % 7) + 7) % 7);
  for (int a = -10; a <= 10; ++a)
    for (int b = -10; b <= 10; ++b) {
      const auto s = (*ma)(Value(a), Value(b)).as_int();
      const auto p = (*mm)(Value(a), Value(b)).as_int();
      EXPECT_GE(s, 0);
      EXPECT_LT(s, 7);
      EXPECT_GE(p, 0);
      EXPECT_LT(p, 7);
    }
}

TEST(BinOp, NamesAreStable) {
  EXPECT_EQ(op_add()->name(), "+");
  EXPECT_EQ(op_modadd(5)->name(), "+mod5");
  EXPECT_EQ(op_modmul(5)->name(), "*mod5");
}

}  // namespace
}  // namespace colop::ir
