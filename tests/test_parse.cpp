// The textual program syntax: parsing, show() round-trips, error reporting.

#include <gtest/gtest.h>

#include "colop/ir/ir.h"
#include "colop/ir/parse.h"
#include "colop/support/error.h"
#include "colop/support/rng.h"

namespace colop::ir {
namespace {

TEST(Parse, SingleStages) {
  EXPECT_EQ(parse_program("bcast").show(), "bcast");
  EXPECT_EQ(parse_program("scan(+)").show(), "scan(+)");
  EXPECT_EQ(parse_program("reduce(*)").show(), "reduce(*)");
  EXPECT_EQ(parse_program("allreduce(max)").show(), "allreduce(max)");
  EXPECT_EQ(parse_program("map(pair)").show(), "map(pair)");
}

TEST(Parse, RootArguments) {
  EXPECT_EQ(parse_program("reduce(+,root=3)").show(), "reduce(+,root=3)");
  EXPECT_EQ(parse_program("bcast(root=2)").show(), "bcast(root=2)");
  EXPECT_EQ(parse_program("reduce(+, root = 3)").show(), "reduce(+,root=3)");
}

TEST(Parse, FullProgramAndWhitespace) {
  const Program p =
      parse_program("  map( pair ) ;scan(+);  reduce( * , root=1 ) ; bcast ");
  EXPECT_EQ(p.show(), "map(pair) ; scan(+) ; reduce(*,root=1) ; bcast");
  EXPECT_EQ(p.size(), 4u);
}

TEST(Parse, ShowRoundTripsForSourcePrograms) {
  const std::vector<std::string> programs = {
      "scan(*) ; reduce(+) ; map(id) ; bcast",
      "bcast ; scan(+) ; scan(+)",
      "map(pair) ; allreduce(gcd) ; map(pi1)",
      "scan(+mod97) ; scan(*mod97)",
      "map(quadruple) ; map(pi1)",
      "reduce(band) ; bcast",
  };
  for (const auto& text : programs) {
    const Program p = parse_program(text);
    EXPECT_EQ(parse_program(p.show()).show(), p.show()) << text;
  }
}

TEST(Parse, AllStandardOperators) {
  for (const std::string name : {"+", "*", "max", "min", "band", "bor", "gcd",
                                 "f+", "f*", "mat2", "first"}) {
    EXPECT_EQ(parse_op(name)->name(), name) << name;
  }
  EXPECT_EQ(parse_op("+mod97")->name(), "+mod97");
  EXPECT_EQ(parse_op("*mod31")->name(), "*mod31");
}

TEST(Parse, ParsedProgramsEvaluate) {
  const Program p = parse_program("scan(+) ; allreduce(max)");
  const Dist out = p.eval_reference(dist_of_ints({3, -1, 4, -1, 5}));
  // prefix sums: 3,2,6,5,10; max = 10 everywhere.
  for (const auto& b : out) EXPECT_EQ(b[0].as_int(), 10);
}

TEST(Parse, ErrorsCarryPosition) {
  for (const std::string bad : {"", "scatter(+)", "scan()", "scan(+",
                                "map(unknownfn)", "reduce(+,depth=3)",
                                "scan(+) ; ; scan(+)", "scan(nosuchop)",
                                "bcast(root=)"}) {
    EXPECT_THROW((void)parse_program(bad), Error) << "'" << bad << "'";
  }
  try {
    (void)parse_program("scan(+) ; blah");
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("position"), std::string::npos);
  }
}

TEST(ParseFuzz, RandomProgramsRoundTripThroughShow) {
  Rng rng(0xF0F0);
  const std::vector<std::string> ops = {"+",      "*",   "max",   "min",
                                        "band",   "bor", "gcd",   "+mod97",
                                        "*mod97", "f+",  "f*"};
  const std::vector<std::string> maps = {"pair", "triple", "quadruple", "id"};
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const int n = static_cast<int>(rng.uniform(1, 7));
    for (int i = 0; i < n; ++i) {
      if (i) text += " ; ";
      switch (rng.uniform(0, 4)) {
        case 0:
          text += "map(" + maps[static_cast<std::size_t>(rng.uniform(0, 3))] + ")";
          break;
        case 1:
          text += "scan(" + ops[static_cast<std::size_t>(rng.uniform(0, 10))] + ")";
          break;
        case 2:
          text += "reduce(" + ops[static_cast<std::size_t>(rng.uniform(0, 10))] +
                  ",root=" + std::to_string(rng.uniform(0, 3)) + ")";
          break;
        case 3:
          text += "allreduce(" + ops[static_cast<std::size_t>(rng.uniform(0, 10))] + ")";
          break;
        default:
          text += "bcast";
          break;
      }
    }
    const Program once = parse_program(text);
    const Program twice = parse_program(once.show());
    EXPECT_EQ(once.show(), twice.show()) << text;
    EXPECT_EQ(once.size(), twice.size());
  }
}

}  // namespace
}  // namespace colop::ir
