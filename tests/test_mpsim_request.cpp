// Non-blocking receives, probe and pending.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "colop/mpsim/mpsim.h"

namespace colop::mpsim {
namespace {

TEST(Request, IrecvWaitRoundtrip) {
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      auto req = irecv<int>(comm, 1);
      // Overlap "computation" while the message may be in flight.
      int local = 21 * 2;
      EXPECT_EQ(req.wait(), local);
    } else {
      comm.send(0, 42);
    }
  });
}

TEST(Request, ReadyReflectsArrival) {
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      auto req = irecv<int>(comm, 1, 3);
      comm.barrier();   // rank 1 sends before this barrier
      comm.barrier();
      EXPECT_TRUE(req.ready());
      EXPECT_EQ(req.wait(), 7);
    } else {
      comm.send(0, 7, 3);
      comm.barrier();
      comm.barrier();
    }
  });
}

TEST(Request, NotReadyBeforeSend) {
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      auto req = irecv<int>(comm, 1, 5);
      EXPECT_FALSE(req.ready());  // nothing sent yet (rank 1 waits on us)
      comm.send(1, 0, 1);
      EXPECT_EQ(req.wait(), 9);
    } else {
      (void)comm.recv<int>(0, 1);
      comm.send(0, 9, 5);
    }
  });
}

TEST(Request, DoubleWaitThrows) {
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      auto req = irecv<int>(comm, 1);
      (void)req.wait();
      EXPECT_THROW((void)req.wait(), Error);
    } else {
      comm.send(0, 1);
    }
  });
}

TEST(Request, WaitAllGathersInRequestOrder) {
  constexpr int kP = 5;
  run_spmd(kP, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<RecvRequest<int>> reqs;
      for (int r = 1; r < kP; ++r) reqs.push_back(irecv<int>(comm, r));
      const auto values = wait_all(reqs);
      for (int r = 1; r < kP; ++r) EXPECT_EQ(values[static_cast<std::size_t>(r - 1)], r * r);
    } else {
      comm.send(0, comm.rank() * comm.rank());
    }
  });
}

TEST(Request, ProbeAndPendingOnComm) {
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.barrier();
      EXPECT_TRUE(comm.probe(1, 2));
      EXPECT_FALSE(comm.probe(1, 3));
      EXPECT_EQ(comm.pending(), 2u);
      (void)comm.recv<int>(1, 2);
      (void)comm.recv<int>(1, 4);
      EXPECT_EQ(comm.pending(), 0u);
    } else {
      comm.send(0, 1, 2);
      comm.send(0, 2, 4);
      comm.barrier();
    }
  });
}

TEST(Request, RejectsCollectiveTagSpace) {
  run_spmd(1, [](Comm& comm) {
    EXPECT_THROW((void)irecv<int>(comm, 0, kCollectiveTagBase), Error);
  });
}

}  // namespace
}  // namespace colop::mpsim
