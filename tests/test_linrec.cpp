// Linear recurrences via scan of affine-map compositions.

#include <gtest/gtest.h>

#include "colop/apps/linrec.h"
#include "colop/exec/thread_executor.h"
#include "colop/ir/ir.h"
#include "colop/support/rng.h"

namespace colop::apps {
namespace {

constexpr std::int64_t kMod = 1'000'003;

TEST(Linrec, OperatorIsAssociativeNotCommutative) {
  auto gen = [](Rng& rng) {
    return ir::Value(ir::Tuple{ir::Value(rng.uniform(0, kMod - 1)),
                               ir::Value(rng.uniform(0, kMod - 1))});
  };
  EXPECT_TRUE(ir::check_associative(*op_affine(kMod), gen, 200));
  EXPECT_FALSE(ir::check_commutative(*op_affine(kMod), gen, 200));
}

TEST(Linrec, CompositionAppliesInListOrder) {
  // f1 = 2x+1, f2 = 3x+5: composed = f2(f1(x)) = 6x + 8.
  const auto op = op_affine(kMod);
  const ir::Value f1(ir::Tuple{ir::Value(2), ir::Value(1)});
  const ir::Value f2(ir::Tuple{ir::Value(3), ir::Value(5)});
  const ir::Value c = (*op)(f1, f2);
  EXPECT_EQ(c.at(0).as_int(), 6);
  EXPECT_EQ(c.at(1).as_int(), 8);
  EXPECT_EQ(linrec_apply(c, 10, kMod), 68);
}

class LinrecP : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(ProcessorCounts, LinrecP,
                         ::testing::Values(1, 2, 3, 5, 6, 8, 13, 16, 27, 32),
                         [](const auto& pinfo) {
                           return "p" + std::to_string(pinfo.param);
                         });

TEST_P(LinrecP, MatchesSequentialRecurrence) {
  const int p = GetParam();
  Rng rng(777);
  std::vector<std::int64_t> a(static_cast<std::size_t>(p)),
      b(static_cast<std::size_t>(p));
  for (auto& v : a) v = rng.uniform(0, 999);
  for (auto& v : b) v = rng.uniform(0, 999);
  const std::int64_t x0 = rng.uniform(0, 999);

  const auto expect = linrec_expected(a, b, x0, kMod);
  const auto prog = linrec_program(kMod);
  const auto in = linrec_input(a, b);

  const ir::Dist ref = prog.eval_reference(in);
  const ir::Dist thr = exec::run_on_threads(prog, in);
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(linrec_apply(ref[static_cast<std::size_t>(r)][0], x0, kMod),
              expect[static_cast<std::size_t>(r)])
        << "rank " << r;
    EXPECT_EQ(linrec_apply(thr[static_cast<std::size_t>(r)][0], x0, kMod),
              expect[static_cast<std::size_t>(r)])
        << "rank " << r;
  }
}

TEST_P(LinrecP, ConstantMapsGiveGeometricSeries) {
  // a_i = 2, b_i = 1, x0 = 0: x_i = 2^i - 1.
  const int p = std::min(GetParam(), 30);  // keep 2^i in range
  std::vector<std::int64_t> a(static_cast<std::size_t>(p), 2),
      b(static_cast<std::size_t>(p), 1);
  const auto out = linrec_program(kMod).eval_reference(linrec_input(a, b));
  std::int64_t pw = 1;
  for (int r = 0; r < p; ++r) {
    pw = (2 * pw) % kMod;
    EXPECT_EQ(linrec_apply(out[static_cast<std::size_t>(r)][0], 0, kMod),
              (pw - 1 + kMod) % kMod)
        << "rank " << r;
  }
}

TEST(Linrec, ShapeConsistent) {
  // The pairs are built by the input, not a map stage; declare the input
  // shape to the checker.
  const auto prog = linrec_program(kMod);
  const auto shape = ir::Shape::replicate(ir::Shape::scalar(), 2);
  EXPECT_FALSE(ir::check_shapes(prog, shape).has_value());
}

}  // namespace
}  // namespace colop::apps
