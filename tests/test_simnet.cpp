// The discrete-event simulator: machine primitives, schedule makespans vs
// the paper's closed forms (Eqs 15-17) at powers of two, and consistency
// between exec::run_on_simnet and the analytic model::program_time.

#include <gtest/gtest.h>

#include "colop/exec/sim_executor.h"
#include "colop/ir/ir.h"
#include "colop/model/cost.h"
#include "colop/rules/rules.h"
#include "colop/simnet/schedules.h"
#include "colop/support/bits.h"

namespace colop::simnet {
namespace {

constexpr NetParams kNet{.ts = 37, .tw = 3};

TEST(SimMachine, ComputeAdvancesOneClock) {
  SimMachine m(4, kNet);
  m.compute(2, 10);
  EXPECT_DOUBLE_EQ(m.clock(2), 10);
  EXPECT_DOUBLE_EQ(m.clock(0), 0);
  EXPECT_DOUBLE_EQ(m.makespan(), 10);
}

TEST(SimMachine, SendChargesSenderRecvWaits) {
  SimMachine m(2, kNet);
  m.send(0, 1, 5);  // ts + 5*tw = 37 + 15 = 52
  EXPECT_DOUBLE_EQ(m.clock(0), 52);
  EXPECT_DOUBLE_EQ(m.clock(1), 0);  // not yet received
  m.recv(1, 0);
  EXPECT_DOUBLE_EQ(m.clock(1), 52);
  EXPECT_EQ(m.messages(), 1u);
  EXPECT_DOUBLE_EQ(m.words_sent(), 5);
}

TEST(SimMachine, RecvAfterLocalWorkTakesMax) {
  SimMachine m(2, kNet);
  m.compute(1, 1000);  // receiver is busy past the arrival
  m.send(0, 1, 1);
  m.recv(1, 0);
  EXPECT_DOUBLE_EQ(m.clock(1), 1000);
}

TEST(SimMachine, ExchangeSynchronizesPartners) {
  SimMachine m(2, kNet);
  m.compute(0, 100);
  m.exchange(0, 1, 2);  // start at max(100,0)=100, +37+6
  EXPECT_DOUBLE_EQ(m.clock(0), 143);
  EXPECT_DOUBLE_EQ(m.clock(1), 143);
  EXPECT_EQ(m.messages(), 2u);
}

TEST(SimMachine, FifoChannelsAndMissingMessageThrows) {
  SimMachine m(2, kNet);
  m.send(0, 1, 1);
  m.send(0, 1, 2);
  m.recv(1, 0);
  m.recv(1, 0);
  EXPECT_THROW(m.recv(1, 0), Error);
}

TEST(SimMachine, ResetClearsState) {
  SimMachine m(2, kNet);
  m.send(0, 1, 1);
  m.reset();
  EXPECT_DOUBLE_EQ(m.makespan(), 0);
  EXPECT_EQ(m.messages(), 0u);
}

// --- schedules vs closed forms at powers of two ---------------------------

class SimPow2P : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Pow2, SimPow2P, ::testing::Values(2, 4, 8, 16, 32, 64),
                         [](const auto& pinfo) {
                           return "p" + std::to_string(pinfo.param);
                         });

TEST_P(SimPow2P, BcastMatchesEq15) {
  const int p = GetParam();
  const double m = 10, lg = colop::log2_floor(static_cast<std::uint64_t>(p));
  for (bool butterfly : {false, true}) {
    SimMachine mach(p, kNet);
    if (butterfly)
      bcast_butterfly(mach, m, 1);
    else
      bcast_binomial(mach, m, 1);
    EXPECT_DOUBLE_EQ(mach.makespan(), lg * (kNet.ts + m * kNet.tw))
        << (butterfly ? "butterfly" : "binomial");
  }
}

TEST_P(SimPow2P, ReduceMatchesEq16) {
  const int p = GetParam();
  const double m = 10, lg = colop::log2_floor(static_cast<std::uint64_t>(p));
  SimMachine butterfly(p, kNet);
  allreduce_butterfly(butterfly, m, 1, 1);
  EXPECT_DOUBLE_EQ(butterfly.makespan(), lg * (kNet.ts + m * (kNet.tw + 1)));

  SimMachine binomial(p, kNet);
  reduce_binomial(binomial, m, 1, 1);
  EXPECT_DOUBLE_EQ(binomial.makespan(), lg * (kNet.ts + m * (kNet.tw + 1)));
}

TEST_P(SimPow2P, ScanMatchesEq17) {
  const int p = GetParam();
  const double m = 10, lg = colop::log2_floor(static_cast<std::uint64_t>(p));
  SimMachine mach(p, kNet);
  scan_butterfly(mach, m, 1, 1);
  EXPECT_DOUBLE_EQ(mach.makespan(), lg * (kNet.ts + m * (kNet.tw + 2)));
}

TEST_P(SimPow2P, BalancedCollectivesMatchTheirModelRows) {
  const int p = GetParam();
  const double m = 10, lg = colop::log2_floor(static_cast<std::uint64_t>(p));
  // reduce_balanced with op_sr: 2 words, 4 ops -> log p (ts + m(2tw + 4)).
  SimMachine rb(p, kNet);
  reduce_balanced(rb, m, 2, 4);
  EXPECT_DOUBLE_EQ(rb.makespan(), lg * (kNet.ts + m * (2 * kNet.tw + 4)));
  // scan_balanced with op_ss: 3 words, 8 ops -> log p (ts + m(3tw + 8)).
  SimMachine sb(p, kNet);
  scan_balanced(sb, m, 3, 8);
  EXPECT_DOUBLE_EQ(sb.makespan(), lg * (kNet.ts + m * (3 * kNet.tw + 8)));
}

TEST_P(SimPow2P, ComcastRepeatMatchesBsComcastAfterRow) {
  const int p = GetParam();
  const double m = 10, lg = colop::log2_floor(static_cast<std::uint64_t>(p));
  SimMachine mach(p, kNet);
  comcast_repeat(mach, m, 1, 2);
  EXPECT_DOUBLE_EQ(mach.makespan(), lg * (kNet.ts + m * (kNet.tw + 2)));
}

TEST(SimSchedules, NonPowerOfTwoStillCompletes) {
  for (int p : {3, 5, 6, 7, 11, 24, 63}) {
    SimMachine mach(p, kNet);
    bcast_binomial(mach, 4, 1);
    allreduce_butterfly(mach, 4, 1, 1);
    scan_butterfly(mach, 4, 1, 1);
    reduce_balanced(mach, 4, 2, 4);
    scan_balanced(mach, 4, 3, 8);
    comcast_repeat(mach, 4, 1, 2);
    comcast_costopt(mach, 4, 2, 2, 1);
    EXPECT_GT(mach.makespan(), 0) << "p=" << p;
  }
}

TEST(SimSchedules, CostoptSendsMoreWordsThanRepeat) {
  // Section 3.4: the cost-optimal comcast ships the auxiliary tuples.
  const int p = 64;
  const double m = 1000;
  SimMachine rep(p, kNet), opt(p, kNet);
  // Binomial bcast for the words comparison: the butterfly variant charges
  // full-size exchanges in both directions, which would mask the effect.
  comcast_repeat(rep, m, 1, 2, /*butterfly_bcast=*/false);
  comcast_costopt(opt, m, 2, 2, 1);
  EXPECT_GT(opt.words_sent(), rep.words_sent());
  // ...and for large blocks it is slower (the paper's measurement).
  EXPECT_GT(opt.makespan(), rep.makespan());
}

// --- executor consistency ---------------------------------------------------

TEST(SimExecutor, MatchesAnalyticModelForPow2Programs) {
  using ir::Program;
  Program prog;
  prog.bcast().scan(ir::op_add()).reduce(ir::op_mul());
  for (int p : {2, 8, 64}) {
    const model::Machine mach{.p = p, .m = 50, .ts = 80, .tw = 2};
    const auto sim = exec::run_on_simnet(prog, mach);
    EXPECT_DOUBLE_EQ(sim.time, model::program_time(prog, mach)) << "p=" << p;
  }
}

TEST(SimExecutor, MatchesModelForRewrittenPrograms) {
  using ir::Program;
  Program lhs;
  lhs.scan(ir::op_mul()).scan(ir::op_add());
  const Program rhs = rules::rule_ss2_scan()->match(lhs, 0)->apply(lhs);
  for (int p : {4, 16, 64}) {
    const model::Machine mach{.p = p, .m = 30, .ts = 200, .tw = 1};
    EXPECT_DOUBLE_EQ(exec::run_on_simnet(lhs, mach).time,
                     model::program_time(lhs, mach));
    EXPECT_DOUBLE_EQ(exec::run_on_simnet(rhs, mach).time,
                     model::program_time(rhs, mach));
  }
}

TEST(SimExecutor, LocalRuleEliminatesAllTraffic) {
  using ir::Program;
  Program lhs;
  lhs.bcast().scan(ir::op_mul()).reduce(ir::op_add());
  const Program rhs = rules::rule_bsr2_local()->match(lhs, 0)->apply(lhs);
  const model::Machine mach{.p = 32, .m = 10, .ts = 100, .tw = 2};
  EXPECT_GT(exec::run_on_simnet(lhs, mach).messages, 0u);
  EXPECT_EQ(exec::run_on_simnet(rhs, mach).messages, 0u);
}

TEST(SimExecutor, ScheduleChoiceChangesTrafficNotPhases) {
  using ir::Program;
  Program prog;
  prog.bcast();
  const model::Machine mach{.p = 16, .m = 10, .ts = 100, .tw = 2};
  const auto butterfly = exec::run_on_simnet(
      prog, mach, {.bcast = exec::SimSchedules::Bcast::butterfly});
  const auto binomial = exec::run_on_simnet(
      prog, mach, {.bcast = exec::SimSchedules::Bcast::binomial});
  EXPECT_DOUBLE_EQ(butterfly.time, binomial.time);  // same log p phases
  EXPECT_GT(butterfly.messages, binomial.messages); // pairwise exchanges cost
}

}  // namespace
}  // namespace colop::simnet

namespace colop::simnet {
namespace {

TEST(SimExecutor, VdgSchedulesBeatButterflyForHugeBlocks) {
  using ir::Program;
  Program prog;
  prog.bcast().allreduce(ir::op_add());
  const model::Machine mach{.p = 64, .m = 32000, .ts = 100, .tw = 2};
  const auto butterfly = exec::run_on_simnet(prog, mach);
  const auto vdg = exec::run_on_simnet(
      prog, mach,
      {.bcast = exec::SimSchedules::Bcast::vdg,
       .reduce = exec::SimSchedules::Reduce::vdg});
  EXPECT_LT(vdg.time, butterfly.time);

  // ...and lose for tiny blocks (more start-ups).
  const model::Machine tiny{.p = 64, .m = 1, .ts = 100, .tw = 2};
  EXPECT_GT(exec::run_on_simnet(prog, tiny,
                                {.bcast = exec::SimSchedules::Bcast::vdg,
                                 .reduce = exec::SimSchedules::Reduce::vdg})
                .time,
            exec::run_on_simnet(prog, tiny).time);
}

}  // namespace
}  // namespace colop::simnet
