// Shape inference and validation: element shapes flow through stages, the
// cost-model `words` metadata is checked against the transmitted widths,
// and every rule rewrite yields a shape-consistent program.

#include <gtest/gtest.h>

#include "colop/ir/ir.h"
#include "colop/rules/rules.h"
#include "colop/support/error.h"

namespace colop::ir {
namespace {

TEST(Shape, ScalarAndTupleBasics) {
  const Shape s = Shape::scalar();
  EXPECT_TRUE(s.is_scalar());
  EXPECT_EQ(s.words(), 1);
  EXPECT_EQ(s.to_string(), "w");

  const Shape pair = Shape::replicate(s, 2);
  EXPECT_TRUE(pair.is_tuple());
  EXPECT_EQ(pair.words(), 2);
  EXPECT_EQ(pair.to_string(), "(w,w)");

  const Shape nested = Shape::tuple_of({pair, s});
  EXPECT_EQ(nested.words(), 3);
  EXPECT_EQ(nested.to_string(), "((w,w),w)");
  EXPECT_EQ(nested, Shape::tuple_of({Shape::replicate(s, 2), Shape::scalar()}));
  EXPECT_FALSE(nested == pair);
}

TEST(Shape, ElemFnShapeTransforms) {
  const Shape s = Shape::scalar();
  EXPECT_EQ(fn_pair().apply_shape(s).words(), 2);
  EXPECT_EQ(fn_triple().apply_shape(s).words(), 3);
  EXPECT_EQ(fn_quadruple().apply_shape(s).words(), 4);
  EXPECT_EQ(fn_proj1().apply_shape(Shape::replicate(s, 4)), s);
  EXPECT_EQ(fn_id().apply_shape(s), s);
  // pair then pi1 is the identity on shapes.
  EXPECT_EQ(fn_compose(fn_pair(), fn_proj1()).apply_shape(s), s);
  // pair of pair.
  EXPECT_EQ(fn_compose(fn_pair(), fn_pair()).apply_shape(s).words(), 4);
}

TEST(ShapeInference, TracksTuplingThroughProgram) {
  Program p;
  p.map(fn_pair()).scan(op_add(), 2).map(fn_proj1()).bcast();
  const auto shapes = infer_shapes(p);
  ASSERT_EQ(shapes.size(), 4u);
  EXPECT_EQ(shapes[0].words(), 2);
  EXPECT_EQ(shapes[1].words(), 2);
  EXPECT_EQ(shapes[2].words(), 1);
  EXPECT_EQ(shapes[3].words(), 1);
}

TEST(ShapeInference, RejectsWrongWordsMetadata) {
  Program p;
  p.map(fn_pair()).scan(op_add());  // scan declares words=1, shape is 2
  EXPECT_THROW(infer_shapes(p), Error);
  const auto err = check_shapes(p);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("words"), std::string::npos);
}

TEST(ShapeInference, RejectsProjectionOfScalar) {
  Program p;
  p.map(fn_proj1());
  EXPECT_THROW(infer_shapes(p), Error);
}

TEST(ShapeInference, ShapeBeforeReportsIntermediateState) {
  Program p;
  p.map(fn_pair()).map(fn_proj1()).map(fn_quadruple());
  EXPECT_EQ(shape_before(p, 0).words(), 1);
  EXPECT_EQ(shape_before(p, 1).words(), 2);
  EXPECT_EQ(shape_before(p, 2).words(), 1);
  EXPECT_EQ(shape_before(p, 3).words(), 4);
  EXPECT_THROW(shape_before(p, 4), Error);
}

TEST(ShapeInference, ScanBalancedTransmitsAllButTheScanComponent) {
  Program lhs;
  lhs.scan(op_add()).scan(op_add());
  const Program rhs = rules::rule_ss_scan()->match(lhs, 0)->apply(lhs);
  // quadruple -> scan_balanced(op_ss, 3 transmitted words) -> pi1
  EXPECT_FALSE(check_shapes(rhs).has_value()) << check_shapes(rhs).value_or("");
}

TEST(ShapeInference, EveryRuleRewriteIsShapeConsistent) {
  std::vector<Program> lhss;
  {
    Program p;
    p.scan(op_mul()).reduce(op_add());
    lhss.push_back(p);
    p = Program{};
    p.scan(op_add()).allreduce(op_add());
    lhss.push_back(p);
    p = Program{};
    p.scan(op_mul()).scan(op_add());
    lhss.push_back(p);
    p = Program{};
    p.bcast().scan(op_add()).scan(op_add());
    lhss.push_back(p);
    p = Program{};
    p.bcast().scan(op_mul()).reduce(op_add());
    lhss.push_back(p);
    p = Program{};
    p.bcast().allreduce(op_add());
    lhss.push_back(p);
    p = Program{};
    p.reduce(op_add()).bcast();
    lhss.push_back(p);
    p = Program{};
    p.scan(op_add()).bcast();
    lhss.push_back(p);
    p = Program{};
    p.map(fn_id()).bcast();
    lhss.push_back(p);
  }
  for (const auto& lhs : lhss) {
    ASSERT_FALSE(check_shapes(lhs).has_value()) << lhs.show();
    for (const auto& rule : rules::all_rules()) {
      for (const auto& m : rule->matches(lhs)) {
        const Program rhs = m.apply(lhs);
        EXPECT_FALSE(check_shapes(rhs).has_value())
            << rule->name() << ": " << rhs.show() << " — "
            << check_shapes(rhs).value_or("");
      }
    }
  }
}

}  // namespace
}  // namespace colop::ir
