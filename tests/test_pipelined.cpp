// Pipelined chain broadcast + the broadcast-schedule autotuner.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "colop/exec/sim_executor.h"
#include "colop/ir/ir.h"
#include "colop/mpsim/mpsim.h"
#include "colop/simnet/schedules.h"

namespace colop::mpsim {
namespace {

class PipelinedP : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(ProcessorCounts, PipelinedP,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 13, 16),
                         [](const auto& pinfo) {
                           return "p" + std::to_string(pinfo.param);
                         });

TEST_P(PipelinedP, DeliversTheFullBlockForVariousSegmentCounts) {
  const int p = GetParam();
  std::vector<std::int64_t> block(37);
  std::iota(block.begin(), block.end(), -5);
  for (int segments : {1, 2, 5, 37, 50}) {  // more segments than elements OK
    auto out = run_spmd_collect<std::vector<std::int64_t>>(p, [&](Comm& comm) {
      return bcast_pipelined(
          comm, comm.rank() == 0 ? block : std::vector<std::int64_t>{},
          segments);
    });
    for (int r = 0; r < p; ++r)
      EXPECT_EQ(out[static_cast<std::size_t>(r)], block)
          << "rank " << r << " segments " << segments;
  }
}

TEST_P(PipelinedP, NonzeroRoot) {
  const int p = GetParam();
  const int root = p / 2;
  std::vector<std::int64_t> block{1, 2, 3, 4, 5};
  auto out = run_spmd_collect<std::vector<std::int64_t>>(p, [&](Comm& comm) {
    return bcast_pipelined(
        comm, comm.rank() == root ? block : std::vector<std::int64_t>{}, 2,
        root);
  });
  for (int r = 0; r < p; ++r) EXPECT_EQ(out[static_cast<std::size_t>(r)], block);
}

TEST(PipelinedSim, MakespanMatchesClosedForm) {
  // (p - 2 + segments) send slots of (ts + seg*tw) each... the chain's
  // critical path: last rank receives the final chunk after
  // (p - 1) + (segments - 1) hops.
  const simnet::NetParams net{100, 2};
  const int p = 8, segments = 4;
  const double m = 400, seg = m / segments;
  simnet::SimMachine mach(p, net);
  simnet::bcast_pipelined(mach, m, 1, segments);
  const double hop = net.ts + seg * net.tw;
  EXPECT_DOUBLE_EQ(mach.makespan(), (p - 1 + segments - 1) * hop);
}

TEST(PipelinedSim, OptimalSegmentsMinimizesTheClosedForm) {
  for (int p : {4, 16, 64}) {
    for (double m : {100.0, 10000.0}) {
      const double ts = 150, tw = 3;
      const int k = simnet::optimal_segments(p, m, ts, tw);
      auto cost = [&](int kk) {
        return (p - 2 + kk) * (ts + m / kk * tw);
      };
      // k* beats (or ties) its neighbours.
      EXPECT_LE(cost(k), cost(k + 1) + 1e-9) << p << " " << m;
      if (k > 1) {
        EXPECT_LE(cost(k), cost(k - 1) + 1e-9) << p << " " << m;
      }
    }
  }
  EXPECT_EQ(simnet::optimal_segments(2, 1000, 100, 2), 1);
  EXPECT_EQ(simnet::optimal_segments(1, 1000, 100, 2), 1);
}

TEST(Autotune, PicksButterflyForSmallAndBandwidthSchedulesForLargeBlocks) {
  const auto [small_sched, t_small] =
      exec::best_bcast_schedule({.p = 64, .m = 4, .ts = 1000, .tw = 2});
  EXPECT_TRUE(small_sched == exec::SimSchedules::Bcast::butterfly ||
              small_sched == exec::SimSchedules::Bcast::binomial)
      << static_cast<int>(small_sched);

  const auto [large_sched, t_large] =
      exec::best_bcast_schedule({.p = 64, .m = 100000, .ts = 1000, .tw = 2});
  EXPECT_TRUE(large_sched == exec::SimSchedules::Bcast::vdg ||
              large_sched == exec::SimSchedules::Bcast::pipelined)
      << static_cast<int>(large_sched);
  EXPECT_GT(t_large, t_small);
}

TEST(Autotune, ReportedTimeMatchesDirectSimulation) {
  const model::Machine mach{.p = 16, .m = 2048, .ts = 300, .tw = 2};
  const auto [sched, t] = exec::best_bcast_schedule(mach);
  ir::Program prog;
  prog.bcast();
  EXPECT_DOUBLE_EQ(t, exec::run_on_simnet(prog, mach, {.bcast = sched}).time);
}

}  // namespace
}  // namespace colop::mpsim
