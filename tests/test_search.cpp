// Cost-guided schedule search (rules/search.h): beam and branch-and-bound
// exploration over rule-application sequences, the dominance guarantees
// (beam <= greedy, exhaustive <= beam), state memoization, the admissible
// branch-and-bound lower bound, and the verify::certify_search soundness
// gate that re-discharges every winning sequence.

#include <gtest/gtest.h>

#include <sstream>

#include "colop/ir/ir.h"
#include "colop/model/cost_memo.h"
#include "colop/obs/metrics.h"
#include "colop/rules/search.h"
#include "colop/verify/certify.h"

namespace colop::rules {
namespace {

using ir::Program;

// The fuse-vs-balance ordering stress case: greedy fuses the whole suffix
// with BSS-Comcast in one step, but first balancing the tail reduction
// (SR-Reduction) and then fusing the bcast;scan prefix (BS-Comcast) is
// cheaper on machines with mid-sized blocks and expensive message startup.
Program ordering_gap_program() {
  Program p;
  p.bcast();
  p.scan(ir::op_add());
  p.scan(ir::op_add());
  p.reduce(ir::op_add());
  return p;
}

// (p, m, ts, tw) where the orderings split: greedy 29568, optimum 28032.
constexpr model::Machine kGapMachine{.p = 64, .m = 256, .ts = 800, .tw = 2};

SearchResult run(SearchStrategy strategy, const Program& prog,
                 const model::Machine& mach, std::size_t width = 8,
                 SearchOptions opts = {}) {
  opts.strategy = strategy;
  opts.beam_width = strategy == SearchStrategy::beam ? width : 0;
  return SearchOptimizer(mach, all_rules(), opts).search(prog);
}

TEST(SearchStrategyNames, ParseAndRenderRoundTrip) {
  EXPECT_EQ(parse_strategy("greedy"), SearchStrategy::greedy);
  EXPECT_EQ(parse_strategy("beam"), SearchStrategy::beam);
  EXPECT_EQ(parse_strategy("bnb"), SearchStrategy::branch_bound);
  EXPECT_EQ(parse_strategy("exhaustive"), SearchStrategy::exhaustive);
  EXPECT_FALSE(parse_strategy("notastrategy").has_value());
  EXPECT_FALSE(parse_strategy("").has_value());
  EXPECT_FALSE(parse_strategy("BEAM").has_value());
  EXPECT_EQ(strategy_name(SearchStrategy::branch_bound), "bnb");
}

TEST(SearchOptimizerTest, BeamStrictlyBeatsGreedyOnOrderingGap) {
  const Program prog = ordering_gap_program();
  const auto beam = run(SearchStrategy::beam, prog, kGapMachine);
  EXPECT_LT(beam.best.cost_final, beam.greedy_cost);
  // The winner is the balance-then-fuse order greedy never considers.
  ASSERT_EQ(beam.best.log.size(), 2u);
  EXPECT_EQ(beam.best.log[0].rule, "SR-Reduction");
  EXPECT_EQ(beam.best.log[1].rule, "BS-Comcast");
}

TEST(SearchOptimizerTest, DominanceChainGreedyBeamExhaustive) {
  const Program prog = ordering_gap_program();
  for (const model::Machine mach :
       {kGapMachine, model::Machine{.p = 8, .m = 4, .ts = 50, .tw = 1},
        model::Machine{.p = 64, .m = 2048, .ts = 12800, .tw = 2}}) {
    const auto narrow = run(SearchStrategy::beam, prog, mach, 1);
    const auto wide = run(SearchStrategy::beam, prog, mach, 8);
    const auto ex = run(SearchStrategy::exhaustive, prog, mach);
    // The greedy seed makes even a width-1 beam no worse than greedy, and
    // a superset exploration can only improve the winner.
    EXPECT_LE(narrow.best.cost_final, narrow.greedy_cost);
    EXPECT_LE(wide.best.cost_final, narrow.best.cost_final);
    EXPECT_LE(ex.best.cost_final, wide.best.cost_final);
  }
}

TEST(SearchOptimizerTest, BranchBoundMatchesExhaustiveAndPrunes) {
  const Program prog = ordering_gap_program();
  // Large blocks + cheap startup: the balanced-reduction subtree's
  // persistent stages alone already exceed the fused incumbent, so the
  // admissible bound prunes it without expansion.
  const model::Machine mach{.p = 64, .m = 2048, .ts = 800, .tw = 2};
  const auto bnb = run(SearchStrategy::branch_bound, prog, mach);
  const auto ex = run(SearchStrategy::exhaustive, prog, mach);
  EXPECT_DOUBLE_EQ(bnb.best.cost_final, ex.best.cost_final);
  EXPECT_EQ(bnb.best.program.show(), ex.best.program.show());
  EXPECT_GT(bnb.stats.pruned_by_bound, 0u);
  EXPECT_LT(bnb.stats.nodes_expanded, ex.stats.nodes_expanded);
}

TEST(SearchOptimizerTest, GreedyStrategyWrapsLegacyOptimizer) {
  const Program prog = ordering_gap_program();
  const auto wrapped = run(SearchStrategy::greedy, prog, kGapMachine);
  const auto legacy = Optimizer(kGapMachine).optimize(prog);
  EXPECT_DOUBLE_EQ(wrapped.best.cost_final, legacy.cost_final);
  EXPECT_EQ(wrapped.best.program.show(), legacy.program.show());
  EXPECT_DOUBLE_EQ(wrapped.greedy_cost, legacy.cost_final);
}

TEST(SearchOptimizerTest, ExhaustiveMatchesLegacyOptimizeExhaustive) {
  const Program prog = ordering_gap_program();
  const auto searched = run(SearchStrategy::exhaustive, prog, kGapMachine);
  const auto legacy = Optimizer(kGapMachine).optimize_exhaustive(prog);
  EXPECT_DOUBLE_EQ(searched.best.cost_final, legacy.cost_final);
  EXPECT_EQ(searched.best.program.show(), legacy.program.show());
}

TEST(SearchOptimizerTest, MemoCountsConvergingRuleOrders) {
  // Rule-order permutations that reach the same program must be priced
  // once: the canonical-key memo reports them as hits.
  const auto ex =
      run(SearchStrategy::exhaustive, ordering_gap_program(), kGapMachine);
  EXPECT_GT(ex.stats.memo_hits, 0u);
  EXPECT_GT(ex.stats.memo_entries, ex.stats.memo_hits);
  EXPECT_GT(ex.stats.memo_hit_rate(), 0.0);
  EXPECT_LT(ex.stats.memo_hit_rate(), 1.0);
}

TEST(SearchOptimizerTest, RankedIsCheapestFirstAndBoundedByTopK) {
  SearchOptions opts;
  opts.top_k = 3;
  const auto res = run(SearchStrategy::exhaustive, ordering_gap_program(),
                       kGapMachine, 0, opts);
  ASSERT_LE(res.ranked.size(), 3u);
  ASSERT_FALSE(res.ranked.empty());
  for (std::size_t i = 1; i < res.ranked.size(); ++i)
    EXPECT_LE(res.ranked[i - 1].cost, res.ranked[i].cost);
  EXPECT_EQ(res.winner_index, 0u);
  EXPECT_DOUBLE_EQ(res.ranked.front().cost, res.best.cost_final);
}

TEST(SearchOptimizerTest, NodeBudgetStillDominatesGreedy) {
  SearchOptions opts;
  opts.base.max_search_nodes = 1;  // starve the search
  const auto res = run(SearchStrategy::exhaustive, ordering_gap_program(),
                       kGapMachine, 0, opts);
  EXPECT_LE(res.best.cost_final, res.greedy_cost);
}

TEST(SearchOptimizerTest, ReportAndJsonCarryTheRanking) {
  const auto res =
      run(SearchStrategy::beam, ordering_gap_program(), kGapMachine);
  const std::string report = res.render_report();
  EXPECT_NE(report.find("beam"), std::string::npos);
  EXPECT_NE(report.find("SR-Reduction@2"), std::string::npos);
  EXPECT_NE(report.find("greedy cost"), std::string::npos);
  std::ostringstream os;
  res.write_json(os);
  EXPECT_NE(os.str().find("\"kind\":\"colop_search_report\""),
            std::string::npos);
  EXPECT_NE(os.str().find("\"ranked\":["), std::string::npos);
}

TEST(SearchMetrics, PublishesCountersAndGauges) {
  const auto res =
      run(SearchStrategy::beam, ordering_gap_program(), kGapMachine);
  obs::Registry reg;
  publish_search_metrics(res, reg);
  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("colop_search_nodes_total"), std::string::npos);
  EXPECT_NE(text.find("colop_search_memo_total"), std::string::npos);
  EXPECT_NE(text.find("colop_search_cost_units"), std::string::npos);
}

TEST(CostMemoTest, PricesOnceAndCountsHits) {
  const Program prog = ordering_gap_program();
  model::CostMemo memo(kGapMachine);
  const double t1 = memo.time(prog);
  const double t2 = memo.time(prog);
  EXPECT_DOUBLE_EQ(t1, t2);
  EXPECT_EQ(memo.entries(), 1u);
  EXPECT_EQ(memo.hits(), 1u);
  EXPECT_NE(model::canonical_hash(prog.show()),
            model::canonical_hash(prog.show() + "x"));
}

TEST(CostMemoTest, CostFloorIsAdmissible) {
  // The floor (persistent-stage cost sum) must never exceed the true
  // program time, on the source and on everything the search reaches.
  const Program prog = ordering_gap_program();
  const auto ex = run(SearchStrategy::exhaustive, prog, kGapMachine);
  for (const auto& r : ex.ranked) {
    const double floor =
        model::cost_floor(r.program, kGapMachine, search_persistent_stage);
    EXPECT_LE(floor, model::program_time(r.program, kGapMachine) + 1e-9)
        << r.program.show();
  }
}

TEST(SearchPersistentStageTest, ConsumableKindsAreNotPersistent) {
  Program p;
  p.map(ir::fn_id());
  p.bcast();
  p.scan(ir::op_add());
  p.reduce(ir::op_add());
  p.allreduce(ir::op_add());
  EXPECT_TRUE(search_persistent_stage(p.stage(0)));   // map
  EXPECT_FALSE(search_persistent_stage(p.stage(1)));  // bcast
  EXPECT_FALSE(search_persistent_stage(p.stage(2)));  // scan
  EXPECT_FALSE(search_persistent_stage(p.stage(3)));  // reduce
  EXPECT_FALSE(search_persistent_stage(p.stage(4)));  // allreduce
}

TEST(CertifySearchTest, WinnerAndNearMissesAllDischarge) {
  const Program prog = ordering_gap_program();
  auto res = run(SearchStrategy::beam, prog, kGapMachine);
  const auto cert = verify::certify_search(prog, std::move(res));
  EXPECT_FALSE(cert.demoted);
  EXPECT_FALSE(cert.fell_back_to_source);
  EXPECT_EQ(cert.search.winner_index, 0u);
  for (const auto& r : cert.search.ranked) EXPECT_EQ(r.certified, 1);
  ASSERT_NE(cert.winner_certificates(), nullptr);
  EXPECT_TRUE(cert.winner_certificates()->ok());
  // Ranked paths share their SR-Reduction@2 prefix: the batched discharge
  // must replay that step once and reuse it.
  EXPECT_GT(cert.certification.reused_steps, 0u);
}

TEST(CertifySearchTest, UnreplayableWinnerFallsBackToSource) {
  const Program prog = ordering_gap_program();
  SearchResult res;
  res.best.program = prog;
  res.best.cost_initial = model::program_time(prog, kGapMachine);
  res.best.cost_final = 1.0;
  RankedSchedule bogus;
  bogus.program = prog;
  bogus.cost = 1.0;
  bogus.path.push_back(AppliedRule{"NoSuchRule", 0, 2, 1, "", 0, 1, ""});
  res.ranked.push_back(std::move(bogus));
  const auto cert = verify::certify_search(prog, std::move(res));
  EXPECT_TRUE(cert.fell_back_to_source);
  EXPECT_TRUE(cert.demoted);
  EXPECT_EQ(cert.search.ranked.front().certified, 0);
  const auto& winner = cert.search.ranked[cert.search.winner_index];
  EXPECT_EQ(winner.certified, 1);
  EXPECT_TRUE(winner.path.empty());
  EXPECT_EQ(cert.search.best.program.show(), prog.show());
  EXPECT_TRUE(cert.search.best.log.empty());
}

TEST(CertifySequencesTest, SharedPrefixDischargedOnce) {
  const Program prog = ordering_gap_program();
  const auto ex = run(SearchStrategy::exhaustive, prog, kGapMachine);
  std::vector<std::vector<AppliedRule>> paths;
  for (const auto& r : ex.ranked) paths.push_back(r.path);
  // Duplicate the whole batch: the second copy must be served entirely
  // from the step cache.
  const std::size_t n = paths.size();
  for (std::size_t i = 0; i < n; ++i) paths.push_back(paths[i]);
  const auto seq = verify::certify_sequences(prog, paths);
  EXPECT_TRUE(seq.all_ok());
  EXPECT_EQ(seq.paths.size(), paths.size());
  EXPECT_GE(seq.reused_steps, seq.discharged_steps);
}

}  // namespace
}  // namespace colop::rules
