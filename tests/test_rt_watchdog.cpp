// Stall watchdog and post-mortem paths (satellite: worker exceptions
// propagate with rank + stage context and release peers blocked in recv).
//
// The acceptance scenario lives here: a deliberately stalled rank must
// trigger a watchdog post-mortem containing the last events of every rank,
// and the launcher must surface the stall as an error instead of hanging.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "colop/exec/thread_executor.h"
#include "colop/ir/ir.h"
#include "colop/ir/parse.h"
#include "colop/mpsim/mpsim.h"
#include "colop/rt/flight_recorder.h"
#include "colop/rt/watchdog.h"
#include "colop/support/error.h"

namespace colop {
namespace {

using rt::Config;
using rt::Ev;
using rt::Fleet;
using rt::StallInfo;
using rt::Watchdog;
using rt::WatchdogOptions;

struct ConfigGuard {
  Config saved = rt::mutable_config();
  ~ConfigGuard() { rt::mutable_config() = saved; }
};

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

TEST(Watchdog, DetectsSilentRank) {
  if (!rt::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  Config cfg;
  cfg.ring_capacity = 64;
  Fleet fleet(2, cfg);
  fleet.recorder(0)->log(Ev::mark);
  fleet.recorder(1)->log(Ev::mark);
  fleet.stats(1)->done.store(1, std::memory_order_release);

  std::atomic<int> aborts{0};
  std::vector<StallInfo> seen;
  WatchdogOptions opts;
  opts.deadline_ms = 20;
  opts.poll_ms = 5;
  opts.on_stall = [&](const std::vector<StallInfo>& s) { seen = s; };
  Watchdog dog(fleet, opts, [&] { aborts.fetch_add(1); });

  for (int i = 0; i < 400 && !dog.stalled(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(dog.stalled());
  dog.stop();

  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].rank, 0);
  EXPECT_GT(seen[0].idle_ns, 0u);
  EXPECT_EQ(aborts.load(), 1);
  EXPECT_NE(dog.describe().find("rank 0"), std::string::npos);
}

TEST(Watchdog, DoneRanksAreNotStalls) {
  if (!rt::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  Config cfg;
  cfg.ring_capacity = 64;
  Fleet fleet(2, cfg);
  for (int r = 0; r < 2; ++r) {
    fleet.recorder(r)->log(Ev::mark);
    rt::RankStats* st = fleet.stats(r);
    ASSERT_NE(st, nullptr);
    st->done.store(1, std::memory_order_release);
  }
  WatchdogOptions opts;
  opts.deadline_ms = 10;
  opts.poll_ms = 2;
  Watchdog dog(fleet, opts, [] {});
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_FALSE(dog.stalled());
  dog.stop();
}

// Acceptance scenario: one rank blocks forever in recv, the rest pile into
// a barrier behind it.  The watchdog must dump a post-mortem with the last
// events of EVERY rank, abort the group so the blocked ranks unwind, and
// the launcher must report the stall as a colop::Error.
TEST(Watchdog, StalledRecvTriggersPostMortemAndReleasesPeers) {
  if (!rt::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  ConfigGuard guard;
  auto& cfg = rt::mutable_config();
  cfg.enabled = true;
  cfg.watchdog_ms = 80;
  cfg.watchdog_poll_ms = 10;
  const std::string prefix = testing::TempDir() + "colop_rt_stall";
  cfg.dump_path = prefix;

  bool threw = false;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    mpsim::run_spmd(4, [](mpsim::Comm& comm) {
      if (comm.rank() == 0) {
        // Deliberate stall: nobody ever sends on this tag.
        (void)comm.recv<int>(1, 7);
      } else {
        comm.send(comm.rank(), 1, 3);  // a little self-traffic, then block
        (void)comm.recv<int>(comm.rank(), 3);
        comm.barrier();  // waits for rank 0, which never arrives
      }
    });
  } catch (const Error& e) {
    threw = true;
    EXPECT_NE(std::string(e.what()).find("stall"), std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(threw) << "stall was not surfaced as an error";
  // The whole thing must resolve in bounded time — blocked peers released.
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(30));

  const std::string text = slurp(prefix + ".txt");
  ASSERT_FALSE(text.empty()) << "post-mortem text missing";
  for (int r = 0; r < 4; ++r)
    EXPECT_NE(text.find("rank " + std::to_string(r)), std::string::npos)
        << "post-mortem lacks rank " << r << ":\n"
        << text;
  EXPECT_NE(text.find("recv_begin"), std::string::npos) << text;
  EXPECT_NE(text.find("barrier_begin"), std::string::npos) << text;

  const std::string trace = slurp(prefix + ".trace.json");
  EXPECT_NE(trace.find("traceEvents"), std::string::npos);
  std::remove((prefix + ".txt").c_str());
  std::remove((prefix + ".trace.json").c_str());
}

// Satellite: a stage that throws reaches the caller with rank + stage
// context, not as a bare payload error or a deadlock.
TEST(ThreadExecutor, ExceptionCarriesRankAndStageContext) {
  ir::Program p = ir::parse_program("scan(band)");  // band needs integers
  ir::Dist in(4);
  for (auto& b : in) b = {ir::Value(1.5)};
  try {
    (void)exec::run_on_threads(p, in);
    FAIL() << "expected a type error from band on doubles";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank "), std::string::npos) << what;
    EXPECT_NE(what.find("failed in stage 0"), std::string::npos) << what;
    EXPECT_NE(what.find("scan(band)"), std::string::npos) << what;
  }
}

// Satellite: a rank exception releases a peer blocked in recv (the group
// abort wakes it), and with COLOP_RT_DUMP set the launcher leaves a
// post-mortem behind.
TEST(Watchdog, UncaughtExceptionDumpsPostMortemAndReleasesPeer) {
  if (!rt::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  ConfigGuard guard;
  auto& cfg = rt::mutable_config();
  cfg.enabled = true;
  cfg.watchdog_ms = 0;  // watchdog off: this is the exception path
  const std::string prefix = testing::TempDir() + "colop_rt_exc";
  cfg.dump_path = prefix;

  try {
    mpsim::run_spmd(2, [](mpsim::Comm& comm) {
      if (comm.rank() == 1) (void)comm.recv<int>(0, 9);  // never sent
      throw Error("boom on rank 0");
    });
    FAIL() << "expected the rank 0 exception";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom on rank 0"), std::string::npos);
  }

  const std::string text = slurp(prefix + ".txt");
  EXPECT_NE(text.find("uncaught rank exception"), std::string::npos) << text;
  std::remove((prefix + ".txt").c_str());
  std::remove((prefix + ".trace.json").c_str());
}

TEST(SnapshotEvents, PairsSendsWithRecvFlowArrows) {
  if (!rt::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  Config cfg;
  cfg.ring_capacity = 32;
  Fleet fleet(2, cfg);
  fleet.recorder(0)->log(Ev::send, 1, 16, 5);
  fleet.recorder(1)->log(Ev::recv_begin, 0, 0, 5);
  fleet.recorder(1)->log(Ev::recv_end, 0, 16, 5);

  const auto events = rt::snapshot_events(fleet.snapshot());
  std::uint64_t start_id = 0, end_id = 0;
  int starts = 0, ends = 0;
  for (const auto& ev : events) {
    if (ev.phase == obs::Phase::flow_start) {
      ++starts;
      start_id = ev.id;
    }
    if (ev.phase == obs::Phase::flow_end) {
      ++ends;
      end_id = ev.id;
    }
  }
  EXPECT_EQ(starts, 1);
  EXPECT_EQ(ends, 1);
  EXPECT_EQ(start_id, end_id) << "send and recv must share a flow id";
}

}  // namespace
}  // namespace colop
