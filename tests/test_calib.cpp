// Cost-model auto-calibration: the least-squares fit must round-trip a
// known machine from exact timings, stay within 5% under measurement
// noise, flag parameters the sample set cannot identify, and close the
// loop end to end (simnet measurement -> fit -> machine) with the drift
// alert firing exactly when the configured machine disagrees.

#include <gtest/gtest.h>

#include <sstream>

#include "colop/model/calib.h"
#include "colop/obs/calibrate.h"
#include "colop/obs/drift.h"
#include "colop/obs/json.h"
#include "colop/support/error.h"
#include "colop/support/rng.h"

namespace colop::model {
namespace {

const Machine kTrue{.p = 16, .m = 64, .ts = 350, .tw = 3};
const std::vector<int> kProcs{2, 4, 8, 16};
const std::vector<double> kBlocks{1, 4, 16, 64};

TEST(Calibration, RoundTripsExactTimings) {
  const auto fit = fit_machine(synthesize_timings(kTrue, kProcs, kBlocks));
  ASSERT_TRUE(fit.ts.identifiable);
  ASSERT_TRUE(fit.tw.identifiable);
  ASSERT_TRUE(fit.op_cost.identifiable);
  EXPECT_NEAR(fit.ts.value, kTrue.ts, 1e-6);
  EXPECT_NEAR(fit.tw.value, kTrue.tw, 1e-8);
  EXPECT_NEAR(fit.op_cost.value, 1.0, 1e-8);
  EXPECT_LT(fit.rms_residual, 1e-6);

  const Machine recovered = fit.machine(kTrue.p, kTrue.m);
  EXPECT_EQ(recovered.p, kTrue.p);
  EXPECT_EQ(recovered.m, kTrue.m);
  EXPECT_NEAR(recovered.ts, kTrue.ts, 1e-6);
  EXPECT_NEAR(recovered.tw, kTrue.tw, 1e-8);
}

TEST(Calibration, RoundTripsScaledUnits) {
  // Timings measured in microseconds on a machine where one elementary
  // operation takes 2.5 us: ts and tw fit out in microseconds alongside
  // op_cost = 2.5, and machine() normalizes them back to op units (the
  // unit the calculus and kTrue use).
  const double unit = 2.5;
  Machine scaled = kTrue;
  scaled.ts = kTrue.ts * unit;
  scaled.tw = kTrue.tw * unit;
  const auto fit =
      fit_machine(synthesize_timings(scaled, kProcs, kBlocks, unit));
  EXPECT_NEAR(fit.op_cost.value, unit, 1e-8);
  const Machine recovered = fit.machine(kTrue.p, kTrue.m);
  EXPECT_NEAR(recovered.ts, kTrue.ts, 1e-6);
  EXPECT_NEAR(recovered.tw, kTrue.tw, 1e-8);
}

TEST(Calibration, RecoversWithinFivePercentUnderNoise) {
  auto timings = synthesize_timings(kTrue, kProcs, kBlocks);
  Rng rng(7);
  for (auto& t : timings)
    t.time *= 1.0 + 0.02 * (rng.uniform01() * 2 - 1);  // +/-2% noise
  const auto fit = fit_machine(timings);
  const Machine recovered = fit.machine(kTrue.p, kTrue.m);
  EXPECT_NEAR(recovered.ts, kTrue.ts, 0.05 * kTrue.ts);
  EXPECT_NEAR(recovered.tw, kTrue.tw, 0.05 * kTrue.tw);
  EXPECT_GT(fit.rms_residual, 0.0);
  // The confidence intervals widen with the noise but stay meaningful.
  EXPECT_GT(fit.ts.ci95, 0.0);
  EXPECT_LT(fit.ts.ci95, kTrue.ts);
}

TEST(Calibration, BcastOnlySamplesCannotIdentifyTheOpCost) {
  std::vector<Timing> bcast_only;
  for (const auto& t : synthesize_timings(kTrue, kProcs, kBlocks))
    if (t.what == Collective::bcast) bcast_only.push_back(t);
  const auto fit = fit_machine(bcast_only);
  EXPECT_FALSE(fit.op_cost.identifiable);
  EXPECT_TRUE(fit.ts.identifiable);
  EXPECT_TRUE(fit.tw.identifiable);
  EXPECT_NEAR(fit.ts.value, kTrue.ts, 1e-6);
  EXPECT_NEAR(fit.tw.value, kTrue.tw, 1e-8);
}

TEST(Calibration, RejectsDegenerateSampleSets) {
  EXPECT_THROW((void)fit_machine({}), Error);
  EXPECT_THROW(
      (void)fit_machine({{Collective::bcast, 2, 1, 10}}), Error);
}

TEST(Calibration, PredictedTimeMatchesClosedForms) {
  // predicted_time is the design function: bcast/reduce/scan add 0/1/2 op
  // applications per element per phase (Eqs 15-17).
  const Machine mach{.p = 8, .m = 10, .ts = 100, .tw = 2};
  const double lg = 3;
  EXPECT_DOUBLE_EQ(predicted_time(Collective::bcast, 8, 10, mach),
                   lg * (100 + 10 * 2));
  EXPECT_DOUBLE_EQ(predicted_time(Collective::reduce, 8, 10, mach),
                   lg * (100 + 10 * (2 + 1)));
  EXPECT_DOUBLE_EQ(predicted_time(Collective::scan, 8, 10, mach),
                   lg * (100 + 10 * (2 + 2)));
}

TEST(Calibration, JsonExportParses) {
  const auto fit = fit_machine(synthesize_timings(kTrue, kProcs, kBlocks));
  std::ostringstream os;
  fit.write_json(os);
  const auto doc = obs::json::parse(os.str());
  ASSERT_NE(doc.get("ts"), nullptr);
  EXPECT_NEAR(doc.get("ts")->get("value")->num, kTrue.ts, 1e-6);
  EXPECT_TRUE(doc.get("ts")->get("identifiable")->b);
}

TEST(CalibrationLoop, SimnetMeasurementsMatchTheClosedFormsAtPowersOfTwo) {
  const auto timings = obs::measure_simnet_timings(kTrue);
  ASSERT_FALSE(timings.empty());
  for (const auto& t : timings)
    EXPECT_NEAR(t.time, predicted_time(t.what, t.p, t.m, kTrue), 1e-9)
        << collective_name(t.what) << " p=" << t.p << " m=" << t.m;
}

TEST(CalibrationLoop, CalibratedMachineRecoversTsTwWithinFivePercent) {
  // The acceptance criterion: measure on simnet, fit, and land within 5%
  // of the machine the simulator was configured with.
  CalibrationResult fit;
  const Machine calibrated = obs::calibrated_machine(kTrue, {}, &fit);
  EXPECT_NEAR(calibrated.ts, kTrue.ts, 0.05 * kTrue.ts);
  EXPECT_NEAR(calibrated.tw, kTrue.tw, 0.05 * kTrue.tw);
  EXPECT_EQ(fit.source, "simnet");
  EXPECT_EQ(fit.samples, 48);
}

TEST(CalibrationLoop, DriftAlertStaysQuietWhenConfigurationIsTrue) {
  const auto fit =
      fit_machine(obs::measure_simnet_timings(kTrue));
  const auto alert = obs::machine_drift(kTrue, fit);
  EXPECT_TRUE(alert.ok) << alert.render_text();
  EXPECT_LT(alert.ts_rel_err, 0.05);
  EXPECT_LT(alert.tw_rel_err, 0.05);
}

TEST(CalibrationLoop, DriftAlertFiresWhenConfigurationLies) {
  // The operator THINKS start-up costs 900 ops; the measured machine says
  // 350.  Every ts_crossover threshold computed from 900 is suspect.
  Machine lied = kTrue;
  lied.ts = 900;
  const auto fit = fit_machine(obs::measure_simnet_timings(kTrue));
  const auto alert = obs::machine_drift(lied, fit);
  EXPECT_FALSE(alert.ok);
  EXPECT_GT(alert.ts_rel_err, 0.5);
  std::ostringstream os;
  alert.write_json(os);
  const auto doc = obs::json::parse(os.str());
  EXPECT_FALSE(doc.get("ok")->b);
}

}  // namespace
}  // namespace colop::model
