// Run archive: manifest round-trip, selector resolution (exact id, unique
// prefix, latest, latest~N), retention eviction order, and the strictness
// of the manifest parser.

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "colop/obs/run_store.h"
#include "colop/support/error.h"

namespace obs = colop::obs;
namespace fs = std::filesystem;

namespace {

/// A fresh store root under the test temp dir.
std::string store_root(const std::string& name) {
  const fs::path root = fs::path(testing::TempDir()) / ("run_store_" + name);
  fs::remove_all(root);
  return root.string();
}

/// A bundle distinguishable by `seq`; later seq = more recent.
obs::RunBundle demo_bundle(int seq) {
  obs::RunBundle b;
  b.trace_id = "00000000000000a" + std::to_string(seq);  // hex, unique
  b.git_sha = "cafe1234";
  b.timestamp = "2026-08-08 12:00:0" + std::to_string(seq);
  b.timestamp_ns = 1'000'000'000ULL * static_cast<std::uint64_t>(seq + 1);
  b.machine = {8, 64, 400, 2};
  b.data_plane = "auto";
  b.args = {"--p", "8", "scan(+) ; bcast"};
  b.program_before = "scan(+) ; bcast";
  b.program_after = "scan(+) ; bcast";
  b.stages_before = {{0, "scan(+)", "scan", false, "", 100.0},
                     {1, "bcast", "bcast", false, "", 50.0}};
  b.stages_after = b.stages_before;
  b.rules = {{"SB-Composition", 0, 2, 1, "note \"quoted\"", 150.0, 120.0,
              "scan(+) ; bcast"}};
  b.model_cost_before = 150;
  b.model_cost_after = 120;
  b.sim_before = {150, 24, 512.5};
  b.sim_after = {120, 20, 400};
  b.wall_ms = 3.25;
  b.artifacts["explain"] = "{\"attempts\":[]}\n";
  b.artifacts["profile"] = "{\"stages\":[]}\n";
  return b;
}

TEST(RunStore, ManifestRoundTrip) {
  const obs::RunBundle b = demo_bundle(3);
  std::ostringstream os;
  b.write_manifest(os);
  const obs::RunBundle back = obs::RunBundle::parse_manifest(os.str());

  EXPECT_EQ(back.trace_id, b.trace_id);
  EXPECT_EQ(back.git_sha, b.git_sha);
  EXPECT_EQ(back.timestamp, b.timestamp);
  EXPECT_EQ(back.timestamp_ns, b.timestamp_ns);
  EXPECT_EQ(back.machine, b.machine);
  EXPECT_EQ(back.data_plane, "auto");
  EXPECT_EQ(back.args, b.args);
  EXPECT_EQ(back.program_after, b.program_after);
  ASSERT_EQ(back.stages_after.size(), 2u);
  EXPECT_EQ(back.stages_after[1].label, "bcast");
  EXPECT_EQ(back.stages_after[1].kind, "bcast");
  EXPECT_FALSE(back.stages_after[1].local);
  EXPECT_DOUBLE_EQ(back.stages_after[1].model_time, 50.0);
  ASSERT_EQ(back.rules.size(), 1u);
  EXPECT_EQ(back.rules[0].rule, "SB-Composition");
  EXPECT_EQ(back.rules[0].note, "note \"quoted\"");
  EXPECT_DOUBLE_EQ(back.rules[0].cost_after, 120.0);
  EXPECT_DOUBLE_EQ(back.model_cost_before, 150.0);
  EXPECT_EQ(back.sim_before.messages, 24u);
  EXPECT_DOUBLE_EQ(back.sim_before.words, 512.5);
  EXPECT_DOUBLE_EQ(back.wall_ms, 3.25);
  // The manifest lists artifact names; contents live in sibling files.
  ASSERT_EQ(back.artifacts.size(), 2u);
  EXPECT_EQ(back.artifacts.count("explain"), 1u);
  EXPECT_EQ(back.artifacts.count("profile"), 1u);
}

TEST(RunStore, ParseRejectsForeignAndTruncatedDocuments) {
  EXPECT_THROW(obs::RunBundle::parse_manifest("{\"kind\":\"other\"}"),
               colop::Error);
  EXPECT_THROW(obs::RunBundle::parse_manifest("not json"), colop::Error);
  // A colop_run document missing required fields must not half-parse.
  EXPECT_THROW(obs::RunBundle::parse_manifest(
                   "{\"kind\":\"colop_run\",\"trace_id\":\"ab\"}"),
               colop::Error);
}

TEST(RunStore, SaveLoadAndListOrder) {
  const obs::RunStore store(store_root("saveload"));
  for (int seq : {0, 2, 1}) {  // write out of order; list sorts by time
    const obs::RunBundle b = demo_bundle(seq);
    const std::string dir = store.save(b);
    EXPECT_TRUE(fs::exists(fs::path(dir) / "manifest.json"));
    EXPECT_TRUE(fs::exists(fs::path(dir) / "explain.json"));
  }
  const auto ids = store.list();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], demo_bundle(2).trace_id);  // most recent first
  EXPECT_EQ(ids[1], demo_bundle(1).trace_id);
  EXPECT_EQ(ids[2], demo_bundle(0).trace_id);

  const obs::RunBundle loaded = store.load(ids[2]);
  EXPECT_EQ(loaded.trace_id, demo_bundle(0).trace_id);
  EXPECT_EQ(loaded.artifacts.at("explain"), "{\"attempts\":[]}\n");
  EXPECT_EQ(loaded.artifacts.at("profile"), "{\"stages\":[]}\n");
}

TEST(RunStore, ResolveSelectors) {
  const obs::RunStore store(store_root("resolve"));
  for (int seq : {0, 1, 2}) store.save(demo_bundle(seq));

  EXPECT_EQ(store.resolve("latest").trace_id, demo_bundle(2).trace_id);
  EXPECT_EQ(store.resolve("latest~0").trace_id, demo_bundle(2).trace_id);
  EXPECT_EQ(store.resolve("latest~2").trace_id, demo_bundle(0).trace_id);
  EXPECT_THROW((void)store.resolve("latest~3"), colop::Error);
  EXPECT_THROW((void)store.resolve("latest~x"), colop::Error);

  // Unique prefix resolves; the shared prefix of all three is ambiguous.
  EXPECT_EQ(store.resolve("00000000000000a1").trace_id,
            demo_bundle(1).trace_id);
  EXPECT_EQ(store.resolve(demo_bundle(1).trace_id).trace_id,
            demo_bundle(1).trace_id);
  EXPECT_THROW((void)store.resolve("00000000"), colop::Error);
  EXPECT_THROW((void)store.resolve("ffff"), colop::Error);

  // The error names the available runs so the user can pick one.
  try {
    (void)store.resolve("ffff");
    FAIL() << "expected resolve to throw";
  } catch (const colop::Error& e) {
    EXPECT_NE(std::string(e.what()).find("available runs"), std::string::npos)
        << e.what();
  }
}

TEST(RunStore, ManifestTextGuardsPathTraversal) {
  const obs::RunStore store(store_root("traversal"));
  store.save(demo_bundle(0));
  EXPECT_TRUE(store.manifest_text(demo_bundle(0).trace_id).has_value());
  EXPECT_FALSE(store.manifest_text("nope").has_value());
  // Non-hex selectors (e.g. ../../etc) must not touch the filesystem.
  EXPECT_FALSE(store.manifest_text("../" + demo_bundle(0).trace_id).has_value());
  EXPECT_FALSE(store.manifest_text("..").has_value());
}

TEST(RunStore, PruneEvictsOldestFirstByCount) {
  const obs::RunStore store(store_root("prune_count"));
  for (int seq : {0, 1, 2, 3, 4}) store.save(demo_bundle(seq));

  obs::RetentionPolicy policy;
  policy.max_count = 2;
  const auto evicted = store.prune(policy);
  ASSERT_EQ(evicted.size(), 3u);
  // Eviction order is oldest first.
  EXPECT_EQ(evicted[0], demo_bundle(0).trace_id);
  EXPECT_EQ(evicted[1], demo_bundle(1).trace_id);
  EXPECT_EQ(evicted[2], demo_bundle(2).trace_id);
  const auto ids = store.list();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], demo_bundle(4).trace_id);
  EXPECT_EQ(ids[1], demo_bundle(3).trace_id);

  // Unlimited policy is a no-op.
  EXPECT_TRUE(store.prune(obs::RetentionPolicy{}).empty());
  EXPECT_EQ(store.list().size(), 2u);
}

TEST(RunStore, PruneEvictsByAge) {
  const obs::RunStore store(store_root("prune_age"));
  obs::RunBundle old_run = demo_bundle(0);
  old_run.timestamp_ns = 1;  // 1970 — ancient
  store.save(old_run);
  obs::RunBundle fresh = demo_bundle(1);
  fresh.timestamp_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  store.save(fresh);

  obs::RetentionPolicy policy;
  policy.max_age_seconds = 3600;
  const auto evicted = store.prune(policy);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], old_run.trace_id);
  EXPECT_EQ(store.list(), std::vector<std::string>{fresh.trace_id});
}

TEST(RunStore, RetentionPolicyParsing) {
  EXPECT_TRUE(obs::RetentionPolicy{}.unlimited());

  const auto count_only = obs::RetentionPolicy::parse("12");
  EXPECT_EQ(count_only.max_count, 12u);
  EXPECT_EQ(count_only.max_age_seconds, 0u);

  const auto keyed = obs::RetentionPolicy::parse("count=3,age=3600");
  EXPECT_EQ(keyed.max_count, 3u);
  EXPECT_EQ(keyed.max_age_seconds, 3600u);
  EXPECT_FALSE(keyed.unlimited());

  EXPECT_THROW((void)obs::RetentionPolicy::parse("soon"), colop::Error);
  EXPECT_THROW((void)obs::RetentionPolicy::parse("ttl=5"), colop::Error);
  EXPECT_THROW((void)obs::RetentionPolicy::parse("count=x"), colop::Error);
}

TEST(RunStore, RetentionFromEnvWarnsOnTypos) {
  ASSERT_EQ(setenv("COLOP_RUN_RETENTION", "count=7", 1), 0);
  std::string warning;
  auto policy = obs::RetentionPolicy::from_env(&warning);
  EXPECT_EQ(policy.max_count, 7u);
  EXPECT_TRUE(warning.empty());

  // A typo must not silently become a destructive policy.
  ASSERT_EQ(setenv("COLOP_RUN_RETENTION", "count=oops", 1), 0);
  policy = obs::RetentionPolicy::from_env(&warning);
  EXPECT_TRUE(policy.unlimited());
  EXPECT_NE(warning.find("COLOP_RUN_RETENTION"), std::string::npos);

  ASSERT_EQ(unsetenv("COLOP_RUN_RETENTION"), 0);
  EXPECT_TRUE(obs::RetentionPolicy::from_env().unlimited());
}

TEST(RunStore, PruneFilesEvictsOldestByMtime) {
  const fs::path dir = fs::path(testing::TempDir()) / "prune_files";
  fs::remove_all(dir);
  fs::create_directories(dir);
  for (int i = 0; i < 4; ++i) {
    const fs::path p = dir / ("BENCH_b" + std::to_string(i) + ".json");
    std::ofstream(p) << "{}";
    // Spread mtimes a minute apart so the order is unambiguous.
    fs::last_write_time(
        p, fs::file_time_type::clock::now() - std::chrono::minutes(10 - i));
  }
  std::ofstream(dir / "OTHER_file.json") << "{}";  // wrong prefix: untouched

  obs::RetentionPolicy policy;
  policy.max_count = 2;
  const auto evicted = obs::prune_files(dir.string(), "BENCH_", ".json", policy);
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_NE(evicted[0].find("BENCH_b0"), std::string::npos);
  EXPECT_NE(evicted[1].find("BENCH_b1"), std::string::npos);
  EXPECT_FALSE(fs::exists(dir / "BENCH_b0.json"));
  EXPECT_TRUE(fs::exists(dir / "BENCH_b2.json"));
  EXPECT_TRUE(fs::exists(dir / "BENCH_b3.json"));
  EXPECT_TRUE(fs::exists(dir / "OTHER_file.json"));

  // Missing directory: no-op, not an error.
  EXPECT_TRUE(
      obs::prune_files((dir / "missing").string(), "BENCH_", ".json", policy)
          .empty());
}

TEST(RunStore, LoadRunOrFileAcceptsManifestPaths) {
  const obs::RunStore store(store_root("orfile"));
  const obs::RunBundle b = demo_bundle(0);
  const std::string dir = store.save(b);

  const obs::RunBundle via_path =
      obs::load_run_or_file(store, (fs::path(dir) / "manifest.json").string());
  EXPECT_EQ(via_path.trace_id, b.trace_id);
  EXPECT_EQ(via_path.artifacts.at("explain"), "{\"attempts\":[]}\n");

  const obs::RunBundle via_selector = obs::load_run_or_file(store, "latest");
  EXPECT_EQ(via_selector.trace_id, b.trace_id);
}

}  // namespace
