// Direct unit tests of the derived-operator algebra — the paper's lemmas
// as executable checks:
//   * op_sr2 is associative whenever x distributes over + (the fact that
//     makes SR2-Reduction/SS2-Scan ordinary collectives);
//   * op_sr/op_ss are NOT associative (why reduce_/scan_balanced exist);
//   * the repeat/e/o schemas compute the closed forms of Section 3.4;
//   * pow_assoc and the generalized local folds are exact.

#include <gtest/gtest.h>

#include "colop/ir/ir.h"
#include "colop/rules/derived_ops.h"
#include "colop/support/rng.h"

namespace colop::rules {
namespace {

using ir::Tuple;
using ir::Value;

std::function<Value(Rng&)> pair_gen(std::int64_t lo, std::int64_t hi) {
  return [lo, hi](Rng& rng) {
    return Value(Tuple{Value(rng.uniform(lo, hi)), Value(rng.uniform(lo, hi))});
  };
}

TEST(OpSr2, AssociativeForEveryDistributivePair) {
  const std::vector<std::pair<ir::BinOpPtr, ir::BinOpPtr>> pairs = {
      {ir::op_modmul(97), ir::op_modadd(97)},
      {ir::op_add(), ir::op_max()},
      {ir::op_add(), ir::op_min()},
      {ir::op_max(), ir::op_min()},
      {ir::op_band(), ir::op_bor()},
      {ir::op_gcd(), ir::op_gcd()},
  };
  for (const auto& [ot, op] : pairs) {
    const auto sr2 = make_op_sr2(ot, op);
    EXPECT_TRUE(ir::check_associative(*sr2, pair_gen(-15, 15), 300))
        << sr2->name();
  }
}

TEST(OpSr2, RequiresDeclaredDistributivity) {
  EXPECT_THROW((void)make_op_sr2(ir::op_add(), ir::op_mul()), Error);
  EXPECT_THROW((void)make_op_comp_bss2(ir::op_add(), ir::op_mul()), Error);
  EXPECT_THROW((void)make_op_bsr2(ir::op_add(), ir::op_mul()), Error);
}

TEST(OpSr2, MatchesTheRulesDefinition) {
  // op_sr2((s1,r1),(s2,r2)) = (s1 + (r1 * s2), r1 * r2)
  const auto sr2 = make_op_sr2(ir::op_mul(), ir::op_add());
  const Value a(Tuple{Value(3), Value(4)});
  const Value b(Tuple{Value(5), Value(6)});
  const Value c = (*sr2)(a, b);
  EXPECT_EQ(c.at(0).as_int(), 3 + 4 * 5);
  EXPECT_EQ(c.at(1).as_int(), 4 * 6);
}

TEST(OpSr, NotAssociativeButBalancedInvariantHolds) {
  const auto sr = make_op_sr(ir::op_add());
  // Non-associativity witness (why reduce_balanced is needed):
  const auto t = [](std::int64_t a, std::int64_t b) {
    return Value(Tuple{Value(a), Value(b)});
  };
  const Value left = sr.combine(sr.combine(t(1, 1), t(2, 2)), t(3, 3));
  const Value right = sr.combine(t(1, 1), sr.combine(t(2, 2), t(3, 3)));
  EXPECT_FALSE(left == right);

  // Invariant (Fig. 4): combining two equal-depth-d siblings over segments
  // with u = 2^d * segment_sum yields u' = 2^(d+1) * total_sum.
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const std::int64_t s1 = rng.uniform(-20, 20), s2 = rng.uniform(-20, 20);
    const int d = static_cast<int>(rng.uniform(0, 5));
    const Value v = sr.combine(t(s1, (1 << d) * s1), t(s2, (1 << d) * s2));
    EXPECT_EQ(v.at(1).as_int(), (2 << d) * (s1 + s2));
  }
}

TEST(OpSr, UnitCaseDoublesU) {
  const auto sr = make_op_sr(ir::op_add());
  const Value v = sr.unit_case(Value(Tuple{Value(7), Value(9)}));
  EXPECT_EQ(v.at(0).as_int(), 7);
  EXPECT_EQ(v.at(1).as_int(), 18);
}

TEST(OpSr, RejectsNonCommutativeBase) {
  EXPECT_THROW((void)make_op_sr(ir::op_mat2()), Error);
  EXPECT_THROW((void)make_op_ss(ir::op_mat2()), Error);
  EXPECT_THROW((void)make_op_bsr(ir::op_mat2()), Error);
  EXPECT_THROW((void)make_op_comp_bss(ir::op_mat2()), Error);
}

TEST(OpSs, PaperExampleExchange) {
  // Fig. 5, first exchange: (2,2,2,2) with (5,5,5,5):
  // lower -> (2, 9, 14, 7); upper -> (9, 9, 14, 14).
  const auto ss = make_op_ss(ir::op_add());
  const Value a(Tuple{Value(2), Value(2), Value(2), Value(2)});
  const Value b(Tuple{Value(5), Value(5), Value(5), Value(5)});
  const auto [lo, hi] = ss.combine2(a, b);
  EXPECT_EQ(lo, Value(Tuple{Value(2), Value(9), Value(14), Value(7)}));
  EXPECT_EQ(hi, Value(Tuple{Value(9), Value(9), Value(14), Value(14)}));
}

TEST(OpSs, DegradeAndStripHandleComponents) {
  const auto ss = make_op_ss(ir::op_add());
  const Value q(Tuple{Value(1), Value(2), Value(3), Value(4)});
  const Value d = ss.degrade(q);
  EXPECT_EQ(d.at(0).as_int(), 1);
  EXPECT_TRUE(d.at(1).is_undefined());
  const Value s = ss.strip(q);
  EXPECT_TRUE(s.at(0).is_undefined());  // the scan value stays local
  EXPECT_EQ(s.at(3).as_int(), 4);
  EXPECT_EQ(s.words(), 3u);  // exactly the paper's 3*tw
}

TEST(OpComp, BsComputesScanOfReplicatedValue) {
  // op_comp k b = the (k+1)-fold + of b (Fig. 6).
  const auto f = make_op_comp_bs(ir::op_add());
  for (int k = 0; k < 40; ++k)
    EXPECT_EQ(f(k, Value(std::int64_t{2})).as_int(), 2 * (k + 1)) << k;
}

TEST(OpComp, Bss2ComputesDoubleScanClosedForm) {
  // With (*, +): rank k gets sum_{i=1..k+1} b^i.
  const auto f = make_op_comp_bss2(ir::op_mul(), ir::op_add());
  const std::int64_t b = 2;
  std::int64_t expect = 0, pw = 1;
  for (int k = 0; k < 20; ++k) {
    pw *= b;
    expect += pw;
    EXPECT_EQ(f(k, Value(b)).as_int(), expect) << k;
  }
}

TEST(OpComp, BssComputesTriangularNumbers) {
  // With +: rank k gets (k+1)(k+2)/2 * b.
  const auto f = make_op_comp_bss(ir::op_add());
  for (std::int64_t k = 0; k < 40; ++k)
    EXPECT_EQ(f(static_cast<int>(k), Value(std::int64_t{3})).as_int(),
              3 * (k + 1) * (k + 2) / 2)
        << k;
}

TEST(PowAssoc, MatchesLinearFold) {
  Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    const std::int64_t b = rng.uniform(0, 96);
    const auto op = ir::op_modadd(97);
    const auto n = static_cast<std::uint64_t>(rng.uniform(1, 200));
    Value expect(b);
    for (std::uint64_t i = 1; i < n; ++i) expect = (*op)(expect, Value(b));
    EXPECT_EQ(pow_assoc(*op, Value(b), n), expect) << n;
  }
}

TEST(PowAssoc, WorksWithNonCommutativeOps) {
  // Matrix powers: pow_assoc only needs associativity.
  const Value fib(Tuple{Value(1), Value(1), Value(1), Value(0)});
  const Value m8 = pow_assoc(*ir::op_mat2(), fib, 8);
  EXPECT_EQ(m8.at(0).as_int(), 34);  // F(9)
  EXPECT_EQ(m8.at(1).as_int(), 21);  // F(8)
}

TEST(PowAssoc, RejectsZeroExponent) {
  EXPECT_THROW((void)pow_assoc(*ir::op_add(), Value(1), 0), Error);
}

TEST(GeneralFolds, MatchIterDoublingAtPowersOfTwo) {
  const auto br_step = make_op_br(ir::op_add());
  const auto br_gen = make_general_br(ir::op_add());
  const auto bsr2_step = make_op_bsr2(ir::op_mul(), ir::op_add());
  const auto bsr2_gen = make_general_bsr2(ir::op_mul(), ir::op_add());
  const auto bsr_step = make_op_bsr(ir::op_add());
  const auto bsr_gen = make_general_bsr(ir::op_add());

  for (int logp = 0; logp <= 5; ++logp) {
    const int p = 1 << logp;
    {
      Value v(std::int64_t{3});
      for (int i = 0; i < logp; ++i) v = br_step(v);
      EXPECT_EQ(br_gen(p, Value(std::int64_t{3})), v) << p;
    }
    {
      Value v(Tuple{Value(1), Value(1)});  // b = 1 keeps * bounded
      for (int i = 0; i < logp; ++i) v = bsr2_step(v);
      EXPECT_EQ(bsr2_gen(p, Value(Tuple{Value(1), Value(1)})).at(0), v.at(0)) << p;
    }
    {
      Value v(Tuple{Value(2), Value(2)});
      for (int i = 0; i < logp; ++i) v = bsr_step(v);
      EXPECT_EQ(bsr_gen(p, Value(Tuple{Value(2), Value(2)})).at(0), v.at(0)) << p;
    }
  }
}

TEST(GeneralFolds, ExactForArbitraryP) {
  const auto bsr_gen = make_general_bsr(ir::op_add());
  for (int p = 1; p <= 33; ++p) {
    // reduce(+) of scan(+) over p copies of b: sum_{i=1..p} i*b.
    const std::int64_t b = 5;
    EXPECT_EQ(bsr_gen(p, Value(Tuple{Value(b), Value(b)})).at(0).as_int(),
              b * p * (p + 1) / 2)
        << p;
  }
}

}  // namespace
}  // namespace colop::rules
