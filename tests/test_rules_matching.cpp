// Rule matching: side conditions reject non-qualifying operators, roots and
// shapes; matches report the right window, equivalence level and notes;
// masked_by_bcast recognizes when root-only divergence is harmless.

#include <gtest/gtest.h>

#include "colop/ir/ir.h"
#include "colop/rules/rules.h"

namespace colop::rules {
namespace {

using ir::Program;

TEST(RuleCatalog, HasThePapersRulesPlusExtensions) {
  const auto rules = all_rules();
  ASSERT_EQ(rules.size(), 17u);
  std::vector<std::string> names;
  for (const auto& r : rules) names.push_back(r->name());
  const std::vector<std::string> expect = {
      "SR2-Reduction", "SR-Reduction",  "SS2-Scan",      "SS-Scan",
      "BS-Comcast",    "BSS2-Comcast",  "BSS-Comcast",   "BR-Local",
      "BSR2-Local",    "BSR-Local",     "CR-Alllocal",   "BSR2-Alllocal",
      "BSR-Alllocal",  "RB-Allreduce",  "SB-Elim",       "BB-Elim",
      "MB-Swap"};
  EXPECT_EQ(names, expect);
  for (const auto& r : rules) EXPECT_FALSE(r->description().empty());
}

TEST(RuleConditions, Sr2RequiresDistributivity) {
  Program good;
  good.scan(ir::op_mul()).reduce(ir::op_add());
  EXPECT_TRUE(rule_sr2_reduction()->match(good, 0).has_value());

  Program bad;  // + does not distribute over *
  bad.scan(ir::op_add()).reduce(ir::op_mul());
  EXPECT_FALSE(rule_sr2_reduction()->match(bad, 0).has_value());
}

TEST(RuleConditions, SrRequiresSameCommutativeOp) {
  Program good;
  good.scan(ir::op_add()).reduce(ir::op_add());
  EXPECT_TRUE(rule_sr_reduction()->match(good, 0).has_value());

  Program different_ops;
  different_ops.scan(ir::op_add()).reduce(ir::op_max());
  EXPECT_FALSE(rule_sr_reduction()->match(different_ops, 0).has_value());

  Program non_commutative;  // mat2 is associative but not commutative
  non_commutative.scan(ir::op_mat2()).reduce(ir::op_mat2());
  EXPECT_FALSE(rule_sr_reduction()->match(non_commutative, 0).has_value());
}

TEST(RuleConditions, SsScanRejectsNonCommutative) {
  Program prog;
  prog.scan(ir::op_mat2()).scan(ir::op_mat2());
  EXPECT_FALSE(rule_ss_scan()->match(prog, 0).has_value());
  // ... and mat2 does not declare self-distributivity either:
  EXPECT_FALSE(rule_ss2_scan()->match(prog, 0).has_value());
}

TEST(RuleConditions, BsComcastNeedsNoCondition) {
  Program prog;
  prog.bcast().scan(ir::op_mat2());  // non-commutative is fine
  EXPECT_TRUE(rule_bs_comcast()->match(prog, 0).has_value());
}

TEST(RuleConditions, LocalRulesRequireRootZero) {
  Program nonzero_bcast;
  nonzero_bcast.bcast(1).reduce(ir::op_add());
  EXPECT_FALSE(rule_br_local()->match(nonzero_bcast, 0).has_value());

  Program nonzero_reduce;
  nonzero_reduce.bcast().reduce(ir::op_add(), 2);
  EXPECT_FALSE(rule_br_local()->match(nonzero_reduce, 0).has_value());

  Program good;
  good.bcast().reduce(ir::op_add());
  EXPECT_TRUE(rule_br_local()->match(good, 0).has_value());
}

TEST(RuleConditions, ComcastAllowsAnyRoot) {
  Program prog;
  prog.bcast(3).scan(ir::op_add());
  auto m = rule_bs_comcast()->match(prog, 0);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->equivalence, Equivalence::full);
}

TEST(RuleMatching, WindowPositionAndCount) {
  Program prog;
  prog.map(ir::fn_id()).bcast().scan(ir::op_add()).scan(ir::op_add());
  // BSS-Comcast matches the 3-stage window starting at index 1.
  auto m = rule_bss_comcast()->match(prog, 1);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->first, 1u);
  EXPECT_EQ(m->count, 3u);
  // No match at index 0 (map is not bcast).
  EXPECT_FALSE(rule_bss_comcast()->match(prog, 0).has_value());
  // Rule::matches finds it exactly once.
  EXPECT_EQ(rule_bss_comcast()->matches(prog).size(), 1u);
}

TEST(RuleMatching, EquivalenceLevels) {
  Program reduce_prog;
  reduce_prog.scan(ir::op_mul()).reduce(ir::op_add());
  EXPECT_EQ(rule_sr2_reduction()->match(reduce_prog, 0)->equivalence,
            Equivalence::root_only);

  Program allreduce_prog;
  allreduce_prog.scan(ir::op_mul()).allreduce(ir::op_add());
  EXPECT_EQ(rule_sr2_reduction()->match(allreduce_prog, 0)->equivalence,
            Equivalence::full);

  Program scan_prog;
  scan_prog.scan(ir::op_mul()).scan(ir::op_add());
  EXPECT_EQ(rule_ss2_scan()->match(scan_prog, 0)->equivalence,
            Equivalence::full);

  Program local_prog;
  local_prog.bcast().allreduce(ir::op_add());
  EXPECT_EQ(rule_cr_alllocal()->match(local_prog, 0)->equivalence,
            Equivalence::full);
}

TEST(RuleMatching, NotesNameTheOperators) {
  Program prog;
  prog.scan(ir::op_mul()).reduce(ir::op_add());
  const auto m = rule_sr2_reduction()->match(prog, 0);
  EXPECT_EQ(m->note, "x=*, +=+");
}

TEST(RuleMatching, RulesDoNotRematchTheirOwnOutput) {
  Program prog;
  prog.scan(ir::op_mul()).scan(ir::op_add());
  const Program rewritten = rule_ss2_scan()->match(prog, 0)->apply(prog);
  // The rewritten scan carries 2-word elements; no rule should touch it.
  for (const auto& rule : all_rules())
    EXPECT_TRUE(rule->matches(rewritten).empty()) << rule->name();
}

TEST(RuleMatching, ReplacementShapes) {
  Program prog;
  prog.bcast().scan(ir::op_add()).scan(ir::op_add());
  const Program out = rule_bss_comcast()->match(prog, 0)->apply(prog);
  EXPECT_EQ(out.show(), "bcast ; map#(op_comp_bss[+])");
  EXPECT_EQ(out.collective_count(), 1u);  // 3 collectives -> 1

  Program local;
  local.bcast().scan(ir::op_mul()).reduce(ir::op_add());
  const Program out2 = rule_bsr2_local()->match(local, 0)->apply(local);
  EXPECT_EQ(out2.collective_count(), 0u);  // 3 collectives -> none
}

TEST(MaskedByBcast, DetectsMaskingSuffix) {
  // scan;reduce ; map g ; bcast — the paper's Example: non-root divergence
  // after the reduce is wiped out by the bcast from the same root.
  Program prog;
  prog.scan(ir::op_mul())
      .reduce(ir::op_add())
      .map(ir::fn_id())
      .bcast();
  EXPECT_TRUE(masked_by_bcast(prog, 2, 0));

  // bcast from a DIFFERENT root does not mask.
  Program other_root;
  other_root.scan(ir::op_mul()).reduce(ir::op_add()).bcast(1);
  EXPECT_FALSE(masked_by_bcast(other_root, 2, 0));

  // A rank-dependent local stage in between is not rank-uniform.
  Program map_indexed;
  map_indexed.scan(ir::op_mul())
      .reduce(ir::op_add())
      .map_indexed({"f", [](int, const ir::Value& v) { return v; }})
      .bcast();
  EXPECT_FALSE(masked_by_bcast(map_indexed, 2, 0));

  // A following collective that reads non-root values does not mask.
  Program followed_by_scan;
  followed_by_scan.scan(ir::op_mul()).reduce(ir::op_add()).scan(ir::op_add());
  EXPECT_FALSE(masked_by_bcast(followed_by_scan, 2, 0));

  // End of program: nothing masks.
  Program ends;
  ends.scan(ir::op_mul()).reduce(ir::op_add());
  EXPECT_FALSE(masked_by_bcast(ends, 2, 0));
}

TEST(RuleMatching, MatchBeyondEndReturnsNothing) {
  Program prog;
  prog.scan(ir::op_mul()).reduce(ir::op_add());
  for (const auto& rule : all_rules()) {
    EXPECT_FALSE(rule->match(prog, 1).has_value()) << rule->name();
    EXPECT_FALSE(rule->match(prog, 2).has_value()) << rule->name();
    EXPECT_FALSE(rule->match(prog, 99).has_value()) << rule->name();
  }
}

}  // namespace
}  // namespace colop::rules
