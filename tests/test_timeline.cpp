// Timeline tracing: spans are contiguous per processor, consistent with
// the one-shot simulation, and the renderer shows every stage.

#include <gtest/gtest.h>

#include "colop/exec/timeline.h"
#include "colop/ir/ir.h"
#include "colop/rules/rules.h"

namespace colop::exec {
namespace {

TEST(Timeline, SpansArePerProcessorContiguousAndMonotone) {
  ir::Program prog;
  prog.bcast().scan(ir::op_add()).reduce(ir::op_mul());
  const model::Machine mach{.p = 8, .m = 16, .ts = 100, .tw = 2};
  const auto trace = trace_on_simnet(prog, mach);
  ASSERT_EQ(trace.spans.size(), 3u);
  EXPECT_EQ(trace.procs, 8);
  for (int r = 0; r < 8; ++r) {
    double t = 0;
    for (const auto& span : trace.spans) {
      EXPECT_DOUBLE_EQ(span.start[static_cast<std::size_t>(r)], t);
      EXPECT_GE(span.end[static_cast<std::size_t>(r)], t);
      t = span.end[static_cast<std::size_t>(r)];
    }
    EXPECT_LE(t, trace.makespan);
  }
}

TEST(Timeline, MakespanMatchesOneShotSimulation) {
  ir::Program prog;
  prog.bcast().scan(ir::op_add()).reduce(ir::op_mul());
  const model::Machine mach{.p = 16, .m = 64, .ts = 300, .tw = 3};
  const auto trace = trace_on_simnet(prog, mach);
  EXPECT_DOUBLE_EQ(trace.makespan, run_on_simnet(prog, mach).time);
}

TEST(Timeline, RenderListsAllStagesAndRows) {
  ir::Program prog;
  prog.map(ir::fn_id()).bcast().scan(ir::op_add());
  const model::Machine mach{.p = 4, .m = 8, .ts = 50, .tw = 1};
  const auto text = render_timeline(trace_on_simnet(prog, mach), 40);
  for (const std::string needle : {"P0", "P3", "A = map(id)", "B = bcast",
                                   "C = scan(+)"})
    EXPECT_NE(text.find(needle), std::string::npos) << needle << "\n" << text;
}

TEST(Timeline, SharedAxisShowsTimeSaved) {
  ir::Program lhs;
  lhs.bcast().scan(ir::op_add());
  const ir::Program rhs = rules::rule_bs_comcast()->match(lhs, 0)->apply(lhs);
  const model::Machine mach{.p = 8, .m = 128, .ts = 200, .tw = 2};
  const auto tb = trace_on_simnet(lhs, mach);
  const auto ta = trace_on_simnet(rhs, mach);
  EXPECT_LT(ta.makespan, tb.makespan);
  // Rendered against the slower program's axis, the faster one has idle
  // tail columns.
  const auto text = render_timeline(ta, 60, tb.makespan);
  EXPECT_NE(text.find('.'), std::string::npos);
}

TEST(Timeline, EmptyTraceRendersGracefully) {
  const SimTrace empty;
  EXPECT_EQ(render_timeline(empty), "(empty trace)\n");
}

}  // namespace
}  // namespace colop::exec
