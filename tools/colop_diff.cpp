// colop_diff — standalone cross-run forensics.
//
// The same differential engine as `colopt --diff`, usable where only the
// archive exists (CI artifact jobs, a laptop inspecting a bundle copied
// out of a runner): diff two recorded runs and emit text, stable JSON
// and/or a self-contained HTML report.
//
// Usage:
//   colop_diff [--store DIR] [--json F] [--html F] <runA> <runB>
//   colop_diff --list [--store DIR]
//
// <runA>/<runB>: a trace id, a unique id prefix, `latest`, `latest~N`, or
// a path to a bundle's manifest.json.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "colop/obs/run_diff.h"
#include "colop/obs/run_store.h"
#include "colop/support/error.h"

namespace {

int usage(int code) {
  std::cerr
      << "usage: colop_diff [--store DIR] [--json F] [--html F] <runA> <runB>\n"
         "       colop_diff --list [--store DIR]\n"
         "  <run>       trace id, unique id prefix, latest, latest~N, or a\n"
         "              manifest.json path\n"
         "  --store DIR run-store root (default $COLOP_RUN_DIR, else\n"
         "              .colop/runs)\n"
         "  --json F    write the diff as stable JSON to file F\n"
         "  --html F    write the diff as a single-file HTML report to F\n"
         "  --list      list archived runs, most recent first, and exit\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace colop;

  std::string store_dir = obs::RunStore::default_root();
  std::string json_file, html_file;
  bool list = false;
  std::vector<std::string> runs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) std::exit(usage(2));
      return argv[++i];
    };
    if (arg == "--store") {
      store_dir = next();
    } else if (arg == "--json") {
      json_file = next();
    } else if (arg == "--html") {
      html_file = next();
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      return usage(2);
    } else {
      runs.push_back(arg);
    }
  }

  try {
    const obs::RunStore store(store_dir);
    if (list) {
      const auto ids = store.list();
      if (ids.empty()) {
        std::cout << "no archived runs in " << store.root()
                  << " (record with colopt --record)\n";
        return 0;
      }
      for (const auto& id : ids) {
        const obs::RunBundle b = store.load(id);
        std::cout << id << "  " << b.timestamp << "  p=" << b.machine.p
                  << " m=" << b.machine.m << "  " << b.program_after << "\n";
      }
      return 0;
    }
    if (runs.size() != 2) return usage(2);

    const obs::RunBundle a = obs::load_run_or_file(store, runs[0]);
    const obs::RunBundle b = obs::load_run_or_file(store, runs[1]);
    const obs::RunDiff d = obs::diff_runs(a, b);
    std::cout << d.render_text();
    if (!json_file.empty()) {
      std::ofstream f(json_file);
      if (!f) throw Error("cannot open " + json_file + " for writing");
      d.write_json(f);
      std::cout << "\nrun diff written to " << json_file << "\n";
    }
    if (!html_file.empty()) {
      std::ofstream f(html_file);
      if (!f) throw Error("cannot open " + html_file + " for writing");
      d.write_html(f);
      std::cout << "run diff HTML report written to " << html_file << "\n";
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
