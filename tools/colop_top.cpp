// colop_top: terminal watcher for a live colopt run.
//
// Connects to the stats server started by `colopt --serve --live`, tails
// the /live Server-Sent Events stream, and renders a refreshing per-rank
// dashboard: current stage, busy/comm/idle split, queue depth, stall flag,
// progress bar and ETA.  Doubles as a scriptable tailer:
//
//   colop_top --port 8123                live dashboard (ANSI refresh)
//   colop_top --port 8123 --json         one JSON snapshot line per frame
//   colop_top --port 8123 --once         single snapshot (GET /live.json)
//   colop_top --port 8123 --max-frames 5 exit after 5 frames (scripting)
//
// Exit codes: 0 stream ended (run finished) or frame budget reached,
// 1 connection/protocol error, 2 usage error.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "colop/obs/json.h"
#include "colop/support/error.h"

namespace {

using colop::obs::json::Value;

void usage() {
  std::cerr <<
      "usage: colop_top [--host H] --port P [--json] [--once]\n"
      "                 [--max-frames N] [--no-ansi]\n"
      "\n"
      "Watch a live colopt run (colopt --serve --live) as a refreshing\n"
      "per-rank dashboard, or tail raw snapshots with --json.\n"
      "\n"
      "  --host H        server host (default 127.0.0.1)\n"
      "  --port P        server port (required; colopt prints it)\n"
      "  --json          print one JSON snapshot line per frame\n"
      "  --once          fetch a single snapshot from /live.json and exit\n"
      "  --max-frames N  exit 0 after N frames (useful in scripts/tests)\n"
      "  --no-ansi       never emit ANSI control sequences\n";
}

int connect_to(const std::string& host, int port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad host address: " + host;
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    *error = "connect " + host + ":" + std::to_string(port) + ": " +
             std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Blocking GET returning the whole body (Connection: close servers).
bool http_get(const std::string& host, int port, const std::string& path,
              std::string* body, std::string* error) {
  const int fd = connect_to(host, port, error);
  if (fd < 0) return false;
  if (!send_all(fd, "GET " + path + " HTTP/1.0\r\nHost: " + host +
                        "\r\nConnection: close\r\n\r\n")) {
    *error = "send failed";
    ::close(fd);
    return false;
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t head_end = response.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    *error = "malformed HTTP response";
    return false;
  }
  if (response.find("200") == std::string::npos ||
      response.find("200") > response.find("\r\n")) {
    *error = "server answered: " + response.substr(0, response.find("\r\n"));
    return false;
  }
  *body = response.substr(head_end + 4);
  return true;
}

std::string fmt_ms(double ms) {
  char buf[32];
  if (ms < 0) return "-";
  if (ms >= 60000)
    std::snprintf(buf, sizeof buf, "%.1fm", ms / 60000);
  else if (ms >= 1000)
    std::snprintf(buf, sizeof buf, "%.1fs", ms / 1000);
  else
    std::snprintf(buf, sizeof buf, "%.0fms", ms);
  return buf;
}

std::string fmt_bytes(double b) {
  char buf[32];
  if (b >= 1 << 20)
    std::snprintf(buf, sizeof buf, "%.1fMB", b / (1 << 20));
  else if (b >= 1 << 10)
    std::snprintf(buf, sizeof buf, "%.1fKB", b / (1 << 10));
  else
    std::snprintf(buf, sizeof buf, "%.0fB", b);
  return buf;
}

double num_or(const Value* v, double fallback) {
  return v != nullptr && v->is(Value::Type::number) ? v->num : fallback;
}

std::string str_or(const Value* v, const std::string& fallback) {
  return v != nullptr && v->is(Value::Type::string) ? v->str : fallback;
}

/// 10-char share bar: '#' busy, '~' comm, '.' idle.
std::string share_bar(double busy, double comm, double idle) {
  const double total = busy + comm + idle;
  std::string bar;
  if (total <= 0) return std::string(10, '.');
  const int nb = static_cast<int>(busy / total * 10 + 0.5);
  const int nc = static_cast<int>(comm / total * 10 + 0.5);
  for (int i = 0; i < nb && bar.size() < 10; ++i) bar += '#';
  for (int i = 0; i < nc && bar.size() < 10; ++i) bar += '~';
  while (bar.size() < 10) bar += '.';
  return bar;
}

/// Render one snapshot as the dashboard screen.
std::string render(const Value& snap, bool ansi) {
  std::ostringstream os;
  if (ansi) os << "\x1b[H\x1b[2J";  // home + clear
  const std::string state = str_or(snap.get("state"), "?");
  os << "colop_top — trace " << str_or(snap.get("trace_id"), "?") << "  state "
     << state;
  const Value* progress = snap.get("progress");
  if (progress != nullptr) {
    const double repeat = num_or(progress->get("repeat"), 0);
    const double repeats = num_or(progress->get("repeats"), 0);
    if (repeats > 1)
      os << "  repeat " << static_cast<long>(repeat + 1) << "/"
         << static_cast<long>(repeats);
  }
  os << "\n" << "program: " << str_or(snap.get("program"), "?") << "\n";
  if (progress != nullptr) {
    const double done = num_or(progress->get("stages_done"), 0);
    const double total = num_or(progress->get("stages_total"), 0);
    const int fill =
        total > 0 ? static_cast<int>(done / total * 20 + 0.5) : 0;
    os << "progress [";
    for (int i = 0; i < 20; ++i) os << (i < fill ? '=' : ' ');
    os << "] " << static_cast<long>(done) << "/" << static_cast<long>(total)
       << " stages   elapsed " << fmt_ms(num_or(snap.get("elapsed_ms"), -1))
       << "  eta " << fmt_ms(num_or(progress->get("eta_ms"), -1))
       << "  heartbeat " << fmt_ms(num_or(snap.get("heartbeat_ms"), -1))
       << "\n";
  }
  os << "events " << static_cast<long>(num_or(snap.get("events_total"), 0))
     << "  dropped "
     << static_cast<long>(num_or(snap.get("dropped_total"), 0)) << "\n\n";
  os << "rank  b/c/i       stage             done    queue  sends   bytes"
        "    last-ev  flags\n";
  const Value* ranks = snap.get("ranks");
  if (ranks != nullptr && ranks->is(Value::Type::array)) {
    for (const auto& rp : ranks->items) {
      const Value& r = *rp;
      const double busy = num_or(r.get("busy_ms"), 0);
      const double comm = num_or(r.get("comm_ms"), 0);
      const double idle = num_or(r.get("idle_ms"), 0);
      std::string stage = str_or(r.get("stage_label"), "");
      if (stage.empty())
        stage = num_or(r.get("stage"), -1) < 0 ? "-" : "?";
      if (stage.size() > 16) stage = stage.substr(0, 15) + "…";
      char line[160];
      std::snprintf(line, sizeof line,
                    "%4ld  %s  %-16s %6ld  %5ld  %5ld  %7s  %8s  %s\n",
                    static_cast<long>(num_or(r.get("rank"), -1)),
                    share_bar(busy, comm, idle).c_str(), stage.c_str(),
                    static_cast<long>(num_or(r.get("stages_done"), 0)),
                    static_cast<long>(num_or(r.get("queue_depth"), 0)),
                    static_cast<long>(num_or(r.get("sends"), 0)),
                    fmt_bytes(num_or(r.get("send_bytes"), 0)).c_str(),
                    fmt_ms(num_or(r.get("last_event_ms"), -1)).c_str(),
                    r.get("stalled") != nullptr && r.get("stalled")->b
                        ? "STALL"
                        : "");
      os << line;
    }
  }
  os << "\n(b/c/i: # busy, ~ comm, . idle)\n";
  return os.str();
}

struct Options {
  std::string host = "127.0.0.1";
  int port = -1;
  bool json = false;
  bool once = false;
  bool ansi = true;
  long max_frames = 0;  // 0 = unlimited
};

/// Handle one SSE frame; returns false when the stream announced its end.
bool dispatch(const std::string& event, const std::string& data,
              const Options& opt, long* frames) {
  if (event == "end") return false;
  if (event != "snapshot" || data.empty()) return true;
  if (opt.json) {
    std::cout << data << "\n" << std::flush;
  } else {
    try {
      const Value snap = colop::obs::json::parse(data);
      std::cout << render(snap, opt.ansi) << std::flush;
    } catch (const colop::Error& e) {
      std::cerr << "warning: unparsable snapshot: " << e.what() << "\n";
    }
  }
  ++*frames;
  return opt.max_frames == 0 || *frames < opt.max_frames;
}

int tail_stream(const Options& opt) {
  std::string error;
  const int fd = connect_to(opt.host, opt.port, &error);
  if (fd < 0) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  if (!send_all(fd, "GET /live HTTP/1.0\r\nHost: " + opt.host +
                        "\r\nAccept: text/event-stream\r\n"
                        "Connection: close\r\n\r\n")) {
    std::cerr << "error: send failed\n";
    ::close(fd);
    return 1;
  }
  std::string buffer;
  bool headers_done = false;
  std::string event, data;
  long frames = 0;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;  // run over, server stopped, or connection lost
    buffer.append(buf, static_cast<std::size_t>(n));
    if (!headers_done) {
      const std::size_t head_end = buffer.find("\r\n\r\n");
      if (head_end == std::string::npos) continue;
      const std::string head = buffer.substr(0, head_end);
      if (head.find("200") == std::string::npos) {
        std::cerr << "error: server answered: "
                  << head.substr(0, head.find("\r\n")) << "\n";
        ::close(fd);
        return 1;
      }
      buffer.erase(0, head_end + 4);
      headers_done = true;
    }
    // SSE framing: "field: value" lines, blank line terminates a frame.
    std::size_t nl;
    while ((nl = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) {
        const bool keep = dispatch(event, data, opt, &frames);
        event.clear();
        data.clear();
        if (!keep) {
          ::close(fd);
          return 0;
        }
      } else if (line.rfind("event: ", 0) == 0) {
        event = line.substr(7);
      } else if (line.rfind("data: ", 0) == 0) {
        if (!data.empty()) data += '\n';
        data += line.substr(6);
      }  // id: and comment lines are ignored
    }
  }
  ::close(fd);
  if (!headers_done) {
    std::cerr << "error: connection closed before headers\n";
    return 1;
  }
  return 0;
}

int fetch_once(const Options& opt) {
  std::string body, error;
  if (!http_get(opt.host, opt.port, "/live.json", &body, &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  if (opt.json) {
    std::cout << body;
    if (body.empty() || body.back() != '\n') std::cout << "\n";
    return 0;
  }
  try {
    const Value snap = colop::obs::json::parse(body);
    std::cout << render(snap, false);
  } catch (const colop::Error& e) {
    std::cerr << "error: unparsable snapshot: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  opt.ansi = ::isatty(STDOUT_FILENO) != 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n\n";
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--host") {
      opt.host = next();
    } else if (arg == "--port") {
      char* end = nullptr;
      const char* s = next();
      opt.port = static_cast<int>(std::strtol(s, &end, 10));
      if (end == s || *end != '\0' || opt.port < 1 || opt.port > 65535) {
        std::cerr << "--port wants a port in 1..65535, got '" << s << "'\n\n";
        usage();
        return 2;
      }
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--once") {
      opt.once = true;
    } else if (arg == "--max-frames") {
      char* end = nullptr;
      const char* s = next();
      opt.max_frames = std::strtol(s, &end, 10);
      if (end == s || *end != '\0' || opt.max_frames < 1) {
        std::cerr << "--max-frames wants a positive integer, got '" << s
                  << "'\n\n";
        usage();
        return 2;
      }
    } else if (arg == "--no-ansi") {
      opt.ansi = false;
    } else {
      std::cerr << "unknown flag: " << arg << "\n\n";
      usage();
      return 2;
    }
  }
  if (opt.port < 0) {
    std::cerr << "--port is required (colopt --serve --live prints it)\n\n";
    usage();
    return 2;
  }
  return opt.once ? fetch_once(opt) : tail_stream(opt);
}
