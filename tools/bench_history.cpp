// bench_history — the bench observatory.
//
// bench_diff answers "did THIS run regress against the committed
// baseline?"; bench_history answers the longitudinal question: how has
// every benchmark scalar moved across commits, and is the latest snapshot
// an outlier against its own recent history?
//
// Storage is deliberately dumb: one append-only JSONL file per benchmark
// under a history directory, one line per snapshot:
//
//   {"schema_version":1,"bench":"table1_rules","git_sha":"...",
//    "timestamp":"2026-08-08 12:00:00","trace_id":"...","scalars":{...}}
//
// Commands:
//   append  --history-dir D --in-dir D2 [--git-sha S]
//           append every BENCH_*.json found in D2 as one snapshot each
//   report  --history-dir D [--bench NAME]
//           per-metric trajectory: first / best / worst / latest
//   check   --history-dir D [--threshold X] [--window N] [--bench NAME]
//           compare the latest snapshot of each bench against the rolling
//           median of up to N prior snapshots; exit 1 when any metric
//           drifted beyond X in its bad direction (direction semantics
//           shared with bench_diff: *_time/*_cost higher-is-worse,
//           *speedup*/*throughput* higher-is-better, anything else flags
//           drift either way)
//
// Exit codes: 0 ok, 1 anomaly found (check), 2 usage error.

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "colop/obs/bench_compare.h"
#include "colop/obs/json.h"
#include "colop/obs/serve.h"
#include "colop/obs/trace_context.h"
#include "colop/support/error.h"

namespace {

namespace fs = std::filesystem;
using colop::obs::json::Value;

struct Snapshot {
  std::string bench;
  std::string git_sha = "unknown";
  std::string timestamp;
  std::string trace_id;
  std::map<std::string, double> scalars;
};

void usage() {
  std::cerr <<
      "usage: bench_history <command> [options]\n"
      "  append --history-dir D --in-dir D2 [--git-sha S]\n"
      "         append every BENCH_*.json in D2 to D/<bench>.jsonl\n"
      "  report --history-dir D [--bench NAME]\n"
      "         per-metric trajectory: first / best / worst / latest\n"
      "  check  --history-dir D [--threshold X] [--window N] [--bench NAME]\n"
      "         flag the latest snapshot against the rolling median of up\n"
      "         to N prior snapshots (default window 8, threshold 0.15);\n"
      "         exit 1 when any metric moved beyond X in its bad direction\n";
}

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "bench_history: " << message << "\n\n";
  usage();
  std::exit(2);
}

double parse_number(const std::string& flag, const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE)
    usage_error("bad value for " + flag + ": '" + text + "'");
  return v;
}

std::string field_string(const Value& doc, const std::string& key) {
  const Value* v = doc.get(key);
  return v != nullptr && v->is(Value::Type::string) ? v->str : std::string();
}

/// Read one BENCH_*.json (either the stamped post-PR-6 shape with an
/// "info" block or a bare legacy {"scalars":...} baseline) into a
/// snapshot.  `fallback_bench` is the name implied by the filename.
Snapshot read_bench_doc(const fs::path& path,
                        const std::string& fallback_bench,
                        const std::string& fallback_sha) {
  std::ifstream f(path);
  if (!f) throw colop::Error("cannot read " + path.string());
  std::stringstream buf;
  buf << f.rdbuf();
  const Value doc = colop::obs::json::parse(buf.str());

  Snapshot snap;
  snap.bench = fallback_bench;
  snap.git_sha = fallback_sha;
  snap.timestamp = colop::obs::utc_timestamp();
  if (const Value* info = doc.get("info")) {
    if (const auto s = field_string(*info, "bench"); !s.empty())
      snap.bench = s;
    if (const auto s = field_string(*info, "git_sha"); !s.empty())
      snap.git_sha = s;
    if (const auto s = field_string(*info, "timestamp"); !s.empty())
      snap.timestamp = s;
    snap.trace_id = field_string(*info, "trace_id");
  }
  const Value* scalars = doc.get("scalars");
  if (scalars == nullptr || !scalars->is(Value::Type::object))
    throw colop::Error(path.string() +
                       ": not a MetricsRegistry document (no \"scalars\")");
  for (const auto& [name, val] : scalars->fields)
    if (val->is(Value::Type::number)) snap.scalars[name] = val->num;
  return snap;
}

void write_snapshot_line(std::ostream& os, const Snapshot& snap) {
  namespace json = colop::obs::json;
  os << "{\"schema_version\":1,\"bench\":" << json::quote(snap.bench)
     << ",\"git_sha\":" << json::quote(snap.git_sha)
     << ",\"timestamp\":" << json::quote(snap.timestamp)
     << ",\"trace_id\":" << json::quote(snap.trace_id) << ",\"scalars\":{";
  bool first = true;
  for (const auto& [name, value] : snap.scalars) {
    if (!first) os << ",";
    first = false;
    os << json::quote(name) << ":" << json::number(value);
  }
  os << "}}\n";
}

Snapshot read_snapshot_line(const std::string& line, const fs::path& from) {
  const Value doc = colop::obs::json::parse(line);
  Snapshot snap;
  snap.bench = field_string(doc, "bench");
  snap.git_sha = field_string(doc, "git_sha");
  snap.timestamp = field_string(doc, "timestamp");
  snap.trace_id = field_string(doc, "trace_id");
  const Value* scalars = doc.get("scalars");
  if (scalars == nullptr || !scalars->is(Value::Type::object))
    throw colop::Error(from.string() + ": snapshot line has no \"scalars\"");
  for (const auto& [name, val] : scalars->fields)
    if (val->is(Value::Type::number)) snap.scalars[name] = val->num;
  return snap;
}

std::vector<Snapshot> read_history(const fs::path& file) {
  std::ifstream f(file);
  if (!f) throw colop::Error("cannot read " + file.string());
  std::vector<Snapshot> out;
  std::string line;
  while (std::getline(f, line))
    if (!line.empty()) out.push_back(read_snapshot_line(line, file));
  return out;
}

/// History files under `dir`, optionally restricted to one bench.
std::vector<fs::path> history_files(const fs::path& dir,
                                    const std::string& only_bench) {
  std::vector<fs::path> files;
  if (!fs::exists(dir)) return files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".jsonl")
      continue;
    if (!only_bench.empty() && entry.path().stem().string() != only_bench)
      continue;
    files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : (xs[n / 2 - 1] + xs[n / 2]) / 2;
}

int cmd_append(const fs::path& history_dir, const fs::path& in_dir,
               const std::string& git_sha) {
  if (!fs::exists(in_dir)) {
    std::cerr << "bench_history: input directory " << in_dir
              << " does not exist\n";
    return 1;
  }
  fs::create_directories(history_dir);
  int appended = 0;
  std::vector<fs::path> inputs;
  for (const auto& entry : fs::directory_iterator(in_dir)) {
    const std::string name = entry.path().filename().string();
    if (entry.is_regular_file() && name.rfind("BENCH_", 0) == 0 &&
        entry.path().extension() == ".json")
      inputs.push_back(entry.path());
  }
  std::sort(inputs.begin(), inputs.end());
  for (const auto& path : inputs) {
    const std::string stem = path.stem().string();          // BENCH_<name>
    const std::string fallback = stem.substr(std::strlen("BENCH_"));
    Snapshot snap;
    try {
      snap = read_bench_doc(path, fallback, git_sha);
    } catch (const colop::Error& e) {
      // Foreign schema (e.g. google-benchmark output) — note and move on.
      std::cout << "skipped " << path.filename().string() << ": " << e.what()
                << "\n";
      continue;
    }
    if (!git_sha.empty()) snap.git_sha = git_sha;
    std::ofstream out(history_dir / (snap.bench + ".jsonl"), std::ios::app);
    write_snapshot_line(out, snap);
    std::cout << "appended " << snap.bench << " @" << snap.git_sha << " ("
              << snap.scalars.size() << " scalars)\n";
    ++appended;
  }
  if (appended == 0) {
    std::cerr << "bench_history: no BENCH_*.json in " << in_dir << "\n";
    return 1;
  }
  return 0;
}

/// Direction-aware extremes: for higher-is-worse metrics best = min, for
/// higher-is-better best = max; neutral metrics report plain min/max.
struct Extremes {
  double best;
  double worst;
};

Extremes extremes(const std::string& metric, const std::vector<double>& xs) {
  const auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
  if (colop::obs::higher_is_worse(metric)) return {*lo, *hi};
  if (colop::obs::higher_is_better(metric)) return {*hi, *lo};
  return {*lo, *hi};
}

int cmd_report(const fs::path& history_dir, const std::string& only_bench) {
  const auto files = history_files(history_dir, only_bench);
  if (files.empty()) {
    std::cerr << "bench_history: no history in " << history_dir << "\n";
    return 1;
  }
  for (const auto& file : files) {
    const auto snaps = read_history(file);
    if (snaps.empty()) continue;
    const Snapshot& latest = snaps.back();
    std::cout << "== " << file.stem().string() << " — " << snaps.size()
              << " snapshot" << (snaps.size() == 1 ? "" : "s") << ", "
              << snaps.front().git_sha.substr(0, 12) << " .. "
              << latest.git_sha.substr(0, 12) << " ==\n";
    std::cout << "  metric                          first        best"
                 "       worst      latest\n";
    for (const auto& [metric, latest_value] : latest.scalars) {
      std::vector<double> xs;
      for (const auto& snap : snaps) {
        const auto it = snap.scalars.find(metric);
        if (it != snap.scalars.end()) xs.push_back(it->second);
      }
      if (xs.empty()) continue;
      const Extremes ex = extremes(metric, xs);
      std::printf("  %-28s %11.6g %11.6g %11.6g %11.6g\n", metric.c_str(),
                  xs.front(), ex.best, ex.worst, latest_value);
    }
    std::cout << "\n";
  }
  return 0;
}

int cmd_check(const fs::path& history_dir, const std::string& only_bench,
              double threshold, int window) {
  const auto files = history_files(history_dir, only_bench);
  if (files.empty()) {
    std::cerr << "bench_history: no history in " << history_dir << "\n";
    return 1;
  }
  int anomalies = 0;
  int checked = 0;
  for (const auto& file : files) {
    const auto snaps = read_history(file);
    if (snaps.size() < 2) {
      std::cout << file.stem().string()
                << ": fewer than 2 snapshots, nothing to check\n";
      continue;
    }
    const Snapshot& latest = snaps.back();
    const std::size_t first_prior =
        snaps.size() - 1 > static_cast<std::size_t>(window)
            ? snaps.size() - 1 - static_cast<std::size_t>(window)
            : 0;
    for (const auto& [metric, latest_value] : latest.scalars) {
      std::vector<double> prior;
      for (std::size_t i = first_prior; i + 1 < snaps.size(); ++i) {
        const auto it = snaps[i].scalars.find(metric);
        if (it != snaps[i].scalars.end()) prior.push_back(it->second);
      }
      if (prior.empty()) continue;
      ++checked;
      const double med = median(prior);
      if (med == 0 && latest_value == 0) continue;
      const double scale = std::max(std::abs(med), 1e-12);
      const double delta = (latest_value - med) / scale;
      const bool worse_up = colop::obs::higher_is_worse(metric);
      const bool better_up = colop::obs::higher_is_better(metric);
      const bool bad = worse_up    ? delta > threshold
                       : better_up ? delta < -threshold
                                   : std::abs(delta) > threshold;
      if (!bad) continue;
      ++anomalies;
      std::printf("ANOMALY %s/%s: latest %.6g vs rolling median %.6g "
                  "(%+.1f%%, threshold %.0f%%)\n",
                  file.stem().string().c_str(), metric.c_str(), latest_value,
                  med, delta * 100, threshold * 100);
    }
  }
  std::cout << (anomalies == 0 ? "OK" : "FAIL") << ": " << checked
            << " metric(s) checked, " << anomalies << " anomal"
            << (anomalies == 1 ? "y" : "ies") << "\n";
  return anomalies == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "-h") {
    usage();
    return 0;
  }
  if (command != "append" && command != "report" && command != "check")
    usage_error("unknown command: " + command);

  std::string history_dir, in_dir, git_sha, bench;
  double threshold = 0.15;
  int window = 8;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--history-dir") {
      history_dir = next();
    } else if (arg == "--in-dir") {
      in_dir = next();
    } else if (arg == "--git-sha") {
      git_sha = next();
    } else if (arg == "--bench") {
      bench = next();
    } else if (arg == "--threshold") {
      threshold = parse_number(arg, next());
      if (threshold <= 0) usage_error("--threshold must be positive");
    } else if (arg == "--window") {
      window = static_cast<int>(parse_number(arg, next()));
      if (window < 1) usage_error("--window must be at least 1");
    } else {
      usage_error("unknown option: " + arg);
    }
  }
  if (history_dir.empty()) usage_error("--history-dir is required");

  try {
    if (command == "append") {
      if (in_dir.empty()) usage_error("append needs --in-dir");
      return cmd_append(history_dir, in_dir, git_sha);
    }
    if (command == "report") return cmd_report(history_dir, bench);
    return cmd_check(history_dir, bench, threshold, window);
  } catch (const colop::Error& e) {
    std::cerr << "bench_history: " << e.what() << "\n";
    return 1;
  }
}
