// colopt — the command-line optimizer driver.
//
// Parse a program in the textual syntax, optimize it for a given machine
// with the paper's rules and cost calculus, and report the derivation,
// predicted times (analytic + simnet) and communication volumes.
//
// Usage:
//   colopt [--p N] [--m N] [--ts X] [--tw X] [--exhaustive] [--strict]
//          "scan(*) ; reduce(+) ; bcast"
//
// Example:
//   $ colopt --p 64 --m 32 --ts 400 "bcast ; scan(+) ; scan(+)"

#include <cstdlib>
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "colop/apps/polyeval.h"
#include "colop/exec/sim_executor.h"
#include "colop/exec/timeline.h"
#include "colop/ir/ir.h"
#include "colop/ir/parse.h"
#include "colop/obs/chrome_trace.h"
#include "colop/obs/drift.h"
#include "colop/obs/metrics.h"
#include "colop/rules/optimizer.h"
#include "colop/support/error.h"
#include "colop/support/table.h"

namespace {

std::ofstream open_output(const std::string& path) {
  std::ofstream f(path);
  if (!f) throw colop::Error("cannot open " + path + " for writing");
  return f;
}

void usage() {
  std::cerr <<
      "usage: colopt [options] \"<program>\"\n"
      "  --p N          processors (default 64)\n"
      "  --m N          block size in elements (default 1024)\n"
      "  --ts X         message start-up time in op units (default 400)\n"
      "  --tw X         per-word transfer time in op units (default 2)\n"
      "  --exhaustive   search all rule-application sequences\n"
      "  --strict       require full equivalence (reject root-only rewrites\n"
      "                 unless masked by a later bcast)\n"
      "  --max-mem N    memory budget: reject rewrites whose peak element\n"
      "                 width exceeds N words (Section 4.2's caveat)\n"
      "  --timeline     render before/after per-processor timelines\n"
      "  --rules        list the rule catalog and exit\n"
      "  --example NAME use a built-in program instead of the text syntax:\n"
      "                 polyeval1|polyeval2|polyeval3|polyeval_sr2 (Section 5,\n"
      "                 coefficients 1..p)\n"
      "  --explain      log every rule attempt (rule x position) with its\n"
      "                 condition/policy verdict and predicted cost delta\n"
      "                 (greedy strategy only)\n"
      "  --explain-json F  write the explain log as JSON to file F\n"
      "  --trace F      write a Chrome trace (chrome://tracing, Perfetto) of\n"
      "                 the optimized program's simulated execution to file F\n"
      "  --metrics F    write prediction metrics to file F (.csv for CSV,\n"
      "                 JSON otherwise)\n"
      "  --drift        report model-vs-simnet drift (time, messages, words)\n"
      "                 for p in {2,4,...,64}\n"
      "  --drift-json F write the drift report as JSON to file F\n"
      "program syntax:  map(pair|triple|quadruple|pi1|id) | scan(OP) |\n"
      "                 reduce(OP[,root=K]) | allreduce(OP) | bcast[(root=K)]\n"
      "                 stages separated by ';'; OP: + * max min band bor gcd\n"
      "                 +modN *modN f+ f* mat2 first\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace colop;

  model::Machine machine{.p = 64, .m = 1024, .ts = 400, .tw = 2};
  bool exhaustive = false;
  bool timeline = false;
  bool explain = false;
  bool drift = false;
  std::string explain_json, trace_file, metrics_file, drift_json, example;
  rules::OptimizerOptions options;
  rules::ExplainLog explain_log;
  std::string program_text;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--p") {
      machine.p = std::atoi(next());
    } else if (arg == "--m") {
      machine.m = std::atof(next());
    } else if (arg == "--ts") {
      machine.ts = std::atof(next());
    } else if (arg == "--tw") {
      machine.tw = std::atof(next());
    } else if (arg == "--exhaustive") {
      exhaustive = true;
    } else if (arg == "--strict") {
      options.policy = rules::EquivalencePolicy::strict;
    } else if (arg == "--max-mem") {
      options.max_elem_words = std::atoi(next());
    } else if (arg == "--timeline") {
      timeline = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--explain-json") {
      explain_json = next();
      explain = true;
    } else if (arg == "--trace") {
      trace_file = next();
    } else if (arg == "--metrics") {
      metrics_file = next();
    } else if (arg == "--drift") {
      drift = true;
    } else if (arg == "--drift-json") {
      drift_json = next();
      drift = true;
    } else if (arg == "--example") {
      example = next();
    } else if (arg == "--rules") {
      for (const auto& r : rules::all_rules())
        std::cout << r->name() << ":\n    " << r->description() << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      usage();
      return 2;
    } else {
      program_text = arg;
    }
  }
  if (program_text.empty() && example.empty()) {
    usage();
    return 2;
  }

  try {
    ir::Program program;
    if (!example.empty()) {
      std::vector<double> coeffs(static_cast<std::size_t>(machine.p));
      for (std::size_t i = 0; i < coeffs.size(); ++i)
        coeffs[i] = static_cast<double>(i + 1);
      if (example == "polyeval1")
        program = apps::polyeval_1(coeffs);
      else if (example == "polyeval2")
        program = apps::polyeval_2(coeffs);
      else if (example == "polyeval3")
        program = apps::polyeval_3(coeffs);
      else if (example == "polyeval_sr2")
        program = apps::polyeval_sr2(coeffs);
      else {
        std::cerr << "unknown example: " << example << "\n";
        return 2;
      }
    } else {
      program = ir::parse_program(program_text);
    }
    if (auto err = ir::check_shapes(program)) {
      std::cerr << "shape error: " << *err << "\n";
      return 1;
    }

    std::cout << "program : " << program.show() << "\n";
    std::cout << "machine : p=" << machine.p << " m=" << machine.m
              << " ts=" << machine.ts << " tw=" << machine.tw << "\n\n";

    if (explain) options.explain = &explain_log;
    const rules::Optimizer optimizer(machine, rules::all_rules(), options);
    const auto result = exhaustive ? optimizer.optimize_exhaustive(program)
                                   : optimizer.optimize(program);

    if (explain) {
      if (exhaustive) {
        std::cout << "(--explain records the greedy strategy only)\n";
      } else {
        std::cout << "rule attempts (every rule x position, per step):\n"
                  << explain_log.render_text(true) << "\n";
      }
      if (!explain_json.empty()) {
        auto f = open_output(explain_json);
        explain_log.write_json(f);
        std::cout << "explain log written to " << explain_json << "\n";
      }
    }

    if (result.log.empty()) {
      std::cout << "no profitable rewrite on this machine.\n";
    } else {
      std::cout << "derivation"
                << (exhaustive ? " (exhaustive search)" : " (greedy)") << ":\n";
      for (const auto& step : result.log) {
        std::cout << "  " << step.rule << " @" << step.position;
        if (!step.note.empty()) std::cout << " {" << step.note << "}";
        std::cout << "\n    = " << step.program_after << "\n";
      }
    }
    std::cout << "\n";

    Table t("prediction", {"version", "analytic cost", "simnet time",
                           "messages", "words"});
    const auto before = exec::run_on_simnet(program, machine);
    const auto after = exec::run_on_simnet(result.program, machine);
    t.add("original", model::program_time(program, machine), before.time,
          before.messages, before.words);
    t.add("optimized", model::program_time(result.program, machine), after.time,
          after.messages, after.words);
    t.print(std::cout);
    if (before.time > 0)
      std::cout << "\npredicted speedup: " << before.time / after.time << "x\n";

    if (timeline) {
      // Timelines get unreadable beyond a screenful of processors.
      model::Machine tl = machine;
      tl.p = std::min(tl.p, 16);
      const auto tb = exec::trace_on_simnet(program, tl);
      const auto ta = exec::trace_on_simnet(result.program, tl);
      std::cout << "\nbefore (p=" << tl.p << "):\n"
                << exec::render_timeline(tb, 72) << "\nafter:\n"
                << exec::render_timeline(ta, 72, tb.makespan);
    }

    if (!trace_file.empty()) {
      // Stage spans plus the fine-grained machine ops beneath them, all in
      // simulated time.
      obs::MemorySink machine_events;
      const auto tr =
          exec::trace_on_simnet(result.program, machine, {}, &machine_events);
      auto events = exec::trace_events(tr);
      for (const auto& ev : machine_events.events()) events.push_back(ev);
      auto f = open_output(trace_file);
      obs::write_chrome_trace(events, f, "colopt");
      std::cout << "\nChrome trace (" << events.size() << " events) written to "
                << trace_file << "\n";
    }

    if (drift) {
      const auto ro = obs::drift_report(program, machine);
      const auto rr = obs::drift_report(result.program, machine);
      std::cout << "\n" << ro.render_text() << "\n" << rr.render_text();
      if (!drift_json.empty()) {
        auto f = open_output(drift_json);
        f << "{\"original\":";
        ro.write_json(f);
        f << ",\"optimized\":";
        rr.write_json(f);
        f << "}\n";
        std::cout << "drift report written to " << drift_json << "\n";
      }
    }

    if (!metrics_file.empty()) {
      obs::MetricsRegistry reg;
      reg.set("p", machine.p);
      reg.set("m", machine.m);
      reg.set("ts", machine.ts);
      reg.set("tw", machine.tw);
      reg.set("model_time_before", model::program_time(program, machine));
      reg.set("model_time_after", model::program_time(result.program, machine));
      reg.set("sim_time_before", before.time);
      reg.set("sim_time_after", after.time);
      reg.set("messages_before", static_cast<double>(before.messages));
      reg.set("messages_after", static_cast<double>(after.messages));
      reg.set("words_before", before.words);
      reg.set("words_after", after.words);
      reg.set("rewrites_applied", static_cast<double>(result.log.size()));
      if (after.time > 0) reg.set("speedup", before.time / after.time);
      auto f = open_output(metrics_file);
      if (metrics_file.size() > 4 &&
          metrics_file.substr(metrics_file.size() - 4) == ".csv")
        reg.write_csv(f);
      else
        reg.write_json(f);
      std::cout << "metrics written to " << metrics_file << "\n";
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
