// colopt — the command-line optimizer driver.
//
// Parse a program in the textual syntax, optimize it for a given machine
// with the paper's rules and cost calculus, and report the derivation,
// predicted times (analytic + simnet) and communication volumes.
//
// Usage:
//   colopt [--p N] [--m N] [--ts X] [--tw X] [--exhaustive] [--strict]
//          "scan(*) ; reduce(+) ; bcast"
//
// Example:
//   $ colopt --p 64 --m 32 --ts 400 "bcast ; scan(+) ; scan(+)"

#include <cstdlib>
#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>

#include "colop/exec/sim_executor.h"
#include "colop/exec/timeline.h"
#include "colop/ir/ir.h"
#include "colop/ir/parse.h"
#include "colop/rules/optimizer.h"
#include "colop/support/table.h"

namespace {

void usage() {
  std::cerr <<
      "usage: colopt [options] \"<program>\"\n"
      "  --p N          processors (default 64)\n"
      "  --m N          block size in elements (default 1024)\n"
      "  --ts X         message start-up time in op units (default 400)\n"
      "  --tw X         per-word transfer time in op units (default 2)\n"
      "  --exhaustive   search all rule-application sequences\n"
      "  --strict       require full equivalence (reject root-only rewrites\n"
      "                 unless masked by a later bcast)\n"
      "  --max-mem N    memory budget: reject rewrites whose peak element\n"
      "                 width exceeds N words (Section 4.2's caveat)\n"
      "  --timeline     render before/after per-processor timelines\n"
      "  --rules        list the rule catalog and exit\n"
      "program syntax:  map(pair|triple|quadruple|pi1|id) | scan(OP) |\n"
      "                 reduce(OP[,root=K]) | allreduce(OP) | bcast[(root=K)]\n"
      "                 stages separated by ';'; OP: + * max min band bor gcd\n"
      "                 +modN *modN f+ f* mat2 first\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace colop;

  model::Machine machine{.p = 64, .m = 1024, .ts = 400, .tw = 2};
  bool exhaustive = false;
  bool timeline = false;
  rules::OptimizerOptions options;
  std::string program_text;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--p") {
      machine.p = std::atoi(next());
    } else if (arg == "--m") {
      machine.m = std::atof(next());
    } else if (arg == "--ts") {
      machine.ts = std::atof(next());
    } else if (arg == "--tw") {
      machine.tw = std::atof(next());
    } else if (arg == "--exhaustive") {
      exhaustive = true;
    } else if (arg == "--strict") {
      options.policy = rules::EquivalencePolicy::strict;
    } else if (arg == "--max-mem") {
      options.max_elem_words = std::atoi(next());
    } else if (arg == "--timeline") {
      timeline = true;
    } else if (arg == "--rules") {
      for (const auto& r : rules::all_rules())
        std::cout << r->name() << ":\n    " << r->description() << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      usage();
      return 2;
    } else {
      program_text = arg;
    }
  }
  if (program_text.empty()) {
    usage();
    return 2;
  }

  try {
    const ir::Program program = ir::parse_program(program_text);
    if (auto err = ir::check_shapes(program)) {
      std::cerr << "shape error: " << *err << "\n";
      return 1;
    }

    std::cout << "program : " << program.show() << "\n";
    std::cout << "machine : p=" << machine.p << " m=" << machine.m
              << " ts=" << machine.ts << " tw=" << machine.tw << "\n\n";

    const rules::Optimizer optimizer(machine, rules::all_rules(), options);
    const auto result = exhaustive ? optimizer.optimize_exhaustive(program)
                                   : optimizer.optimize(program);

    if (result.log.empty()) {
      std::cout << "no profitable rewrite on this machine.\n";
    } else {
      std::cout << "derivation"
                << (exhaustive ? " (exhaustive search)" : " (greedy)") << ":\n";
      for (const auto& step : result.log) {
        std::cout << "  " << step.rule << " @" << step.position;
        if (!step.note.empty()) std::cout << " {" << step.note << "}";
        std::cout << "\n    = " << step.program_after << "\n";
      }
    }
    std::cout << "\n";

    Table t("prediction", {"version", "analytic cost", "simnet time",
                           "messages", "words"});
    const auto before = exec::run_on_simnet(program, machine);
    const auto after = exec::run_on_simnet(result.program, machine);
    t.add("original", model::program_time(program, machine), before.time,
          before.messages, before.words);
    t.add("optimized", model::program_time(result.program, machine), after.time,
          after.messages, after.words);
    t.print(std::cout);
    if (before.time > 0)
      std::cout << "\npredicted speedup: " << before.time / after.time << "x\n";

    if (timeline) {
      // Timelines get unreadable beyond a screenful of processors.
      model::Machine tl = machine;
      tl.p = std::min(tl.p, 16);
      const auto tb = exec::trace_on_simnet(program, tl);
      const auto ta = exec::trace_on_simnet(result.program, tl);
      std::cout << "\nbefore (p=" << tl.p << "):\n"
                << exec::render_timeline(tb, 72) << "\nafter:\n"
                << exec::render_timeline(ta, 72, tb.makespan);
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
