// colopt — the command-line optimizer driver.
//
// Parse a program in the textual syntax, optimize it for a given machine
// with the paper's rules and cost calculus, and report the derivation,
// predicted times (analytic + simnet) and communication volumes.
//
// Usage:
//   colopt [--p N] [--m N] [--ts X] [--tw X] [--exhaustive] [--strict]
//          "scan(*) ; reduce(+) ; bcast"
//
// Example:
//   $ colopt --p 64 --m 32 --ts 400 "bcast ; scan(+) ; scan(+)"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "colop/apps/polyeval.h"
#include "colop/exec/sim_executor.h"
#include "colop/exec/thread_executor.h"
#include "colop/exec/timeline.h"
#include "colop/ir/ir.h"
#include "colop/ir/parse.h"
#include "colop/model/calib.h"
#include "colop/obs/calibrate.h"
#include "colop/obs/chrome_trace.h"
#include "colop/obs/drift.h"
#include "colop/obs/metrics.h"
#include "colop/obs/profile.h"
#include "colop/obs/run_diff.h"
#include "colop/obs/run_store.h"
#include "colop/obs/live.h"
#include "colop/obs/serve.h"
#include "colop/obs/trace_context.h"
#include "colop/rt/flight_recorder.h"
#include "colop/rt/report.h"
#include "colop/rules/optimizer.h"
#include "colop/rules/search.h"
#include "colop/support/error.h"
#include "colop/verify/certify.h"
#include "colop/support/rng.h"
#include "colop/support/table.h"
#include "colop/verify/verify.h"

namespace {

std::ofstream open_output(const std::string& path) {
  std::ofstream f(path);
  if (!f) throw colop::Error("cannot open " + path + " for writing");
  return f;
}

void usage();

// Strict numeric flag parsing: the whole operand must be a number.  A typo
// like `--p 6x4` or `--ts fast` must fail loudly with the usage hint, not
// silently truncate to whatever atoi salvages.
[[noreturn]] void bad_value(const std::string& flag, const char* text,
                            const char* expected) {
  std::cerr << "bad value for " << flag << ": '" << text << "' (expected "
            << expected << ")\n\n";
  usage();
  std::exit(2);
}

int parse_int(const std::string& flag, const char* text) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || v < INT_MIN ||
      v > INT_MAX)
    bad_value(flag, text, "an integer");
  return static_cast<int>(v);
}

double parse_double(const std::string& flag, const char* text) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE)
    bad_value(flag, text, "a number");
  return v;
}

void usage() {
  std::cerr <<
      "usage: colopt [options] \"<program>\"\n"
      "  --p N          processors (default 64)\n"
      "  --m N          block size in elements (default 1024)\n"
      "  --ts X         message start-up time in op units (default 400)\n"
      "  --tw X         per-word transfer time in op units (default 2)\n"
      "  --opt=S        schedule-search strategy: greedy (one-step greedy\n"
      "                 rewriting, default), beam (cost-guided beam search),\n"
      "                 bnb (branch-and-bound with an admissible lower\n"
      "                 bound), or exhaustive (breadth-first over all rule\n"
      "                 sequences).  Search strategies explore rule-order\n"
      "                 permutations the greedy optimizer never sees, seed\n"
      "                 their incumbent with the greedy result (never worse),\n"
      "                 and re-discharge the winning sequence's rewrite\n"
      "                 certificates before returning it\n"
      "  --beam-width=N beam frontier width (default 8; --opt=beam only)\n"
      "  --search-report        print the ranked top-K schedule report with\n"
      "                 rule paths, cost gaps and search statistics\n"
      "  --search-report-json F write the search report as JSON to file F\n"
      "  --exhaustive   alias for --opt=exhaustive\n"
      "  --strict       require full equivalence (reject root-only rewrites\n"
      "                 unless masked by a later bcast)\n"
      "  --max-mem N    memory budget: reject rewrites whose peak element\n"
      "                 width exceeds N words (Section 4.2's caveat)\n"
      "  --overlap[=K]  enable the split-phase overlap rules (Overlap-Split,\n"
      "                 Wait-Sink): collectives followed by elementwise maps\n"
      "                 are rewritten to istart_C ; map... ; wait windows the\n"
      "                 executor pipelines in K segments (default 4, K >= 2).\n"
      "                 Works with every --opt strategy and with --verify,\n"
      "                 whose V22x split-phase contracts gate the result\n"
      "  --timeline     render before/after per-processor timelines\n"
      "  --rules        list the rule catalog and exit\n"
      "  --verify       statically verify the run: operator property\n"
      "                 declarations (checked, not trusted), distribution-\n"
      "                 state contracts of the source and optimized\n"
      "                 schedules, and one soundness certificate per rule\n"
      "                 application; exit 3 if anything is unsound\n"
      "  --verify-json F  write the verification report as JSON to file F\n"
      "                 (implies --verify)\n"
      "  --lint         also report lint-severity findings (missed fusions,\n"
      "                 packed-plane ineligibility); implies --verify\n"
      "  --example NAME use a built-in program instead of the text syntax:\n"
      "                 polyeval1|polyeval2|polyeval3|polyeval_sr2 (Section 5,\n"
      "                 coefficients 1..p)\n"
      "  --explain      log every rule attempt (rule x position) with its\n"
      "                 condition/policy verdict and predicted cost delta\n"
      "                 (greedy strategy only)\n"
      "  --explain-json F  write the explain log as JSON to file F\n"
      "  --trace F      write a Chrome trace (chrome://tracing, Perfetto) of\n"
      "                 the optimized program's simulated execution to file F\n"
      "  --metrics F    write run metrics to file F through the telemetry\n"
      "                 registry (.prom for Prometheus text, .csv for the\n"
      "                 legacy scalar CSV, JSON otherwise)\n"
      "  --serve[=PORT] run the program on the thread executor, then serve\n"
      "                 the telemetry registry over HTTP on 127.0.0.1:PORT\n"
      "                 (default: a kernel-assigned ephemeral port, printed\n"
      "                 on stdout): /metrics /metrics.json /runs\n"
      "                 /runs/<trace_id> /live /live.json /healthz\n"
      "  --live         with --serve: start the server *before* execution\n"
      "                 and stream in-flight telemetry — /metrics moves\n"
      "                 mid-run, /live streams snapshots as Server-Sent\n"
      "                 Events (watch with tools/colop_top), /healthz\n"
      "                 reports idle|running|stalled; pair with --repeat N\n"
      "                 to make the run long enough to watch\n"
      "  --record[=DIR] archive this run as a forensics bundle — manifest\n"
      "                 (identity, machine, schedule IR, applied rules, cost\n"
      "                 summary) plus every JSON artifact the run emits —\n"
      "                 under DIR/<trace_id>/ (default $COLOP_RUN_DIR, else\n"
      "                 .colop/runs); honors $COLOP_RUN_RETENTION, e.g.\n"
      "                 \"count=32,age=604800\"\n"
      "  --store DIR    run-store root for --diff and --serve lookups\n"
      "                 (default: the --record DIR, else $COLOP_RUN_DIR,\n"
      "                 else .colop/runs)\n"
      "  --diff A B     cross-run forensics: diff two archived runs (each a\n"
      "                 trace id, unique id prefix, latest, latest~N, or a\n"
      "                 manifest.json path) and exit; no program operand\n"
      "                 needed.  Reports machine drift, the stage-level\n"
      "                 schedule diff with rule provenance, ranked suspect\n"
      "                 stages, and totals\n"
      "  --diff-json F  write the run diff as stable JSON to file F\n"
      "  --diff-html F  write the run diff as a self-contained HTML report\n"
      "                 (side-by-side timelines + tables) to file F\n"
      "  --drift        report model-vs-simnet drift (time, messages, words)\n"
      "                 for p in {2,4,...,64}\n"
      "  --drift-json F write the drift report as JSON to file F\n"
      "  --profile      critical-path profile of the optimized program:\n"
      "                 per-rank busy/comm/idle, the critical path, and\n"
      "                 per-stage attribution with rule provenance\n"
      "  --profile-json F   write the profile as JSON to file F\n"
      "  --profile-trace F  write the profile as a Chrome trace (critical\n"
      "                 path drawn as flow arrows) to file F\n"
      "  --calibrate    fit ts/tw/op-cost from measured collective timings\n"
      "                 and report the fit plus drift vs the configured\n"
      "                 machine\n"
      "  --calibrate-from S  timing source: simnet (deterministic, default)\n"
      "                 or mpsim (wall-clock threads)\n"
      "  --calibrate-json F  write the calibration fit as JSON to file F\n"
      "  --rt-report    run the optimized program on the thread executor and\n"
      "                 report runtime telemetry: per-rank busy/wait/queue\n"
      "                 depth and per-stage wall-clock-vs-predicted drift\n"
      "  --rt-json F    write the runtime report as JSON to file F\n"
      "  --rt-trace F   write the flight-recorder capture as a Chrome trace\n"
      "                 (send->recv flow arrows) to file F\n"
      "  --rt-html F    write a self-contained HTML runtime report (timeline\n"
      "                 + tables, no external assets) to file F\n"
      "  --repeat N     run the threaded execution N times and report\n"
      "                 min/median/stddev wall time (default 1)\n"
      "  --warmup K     discard the first K threaded runs (default 0)\n"
      "  --machine S    optimize against the 'configured' machine (default)\n"
      "                 or the 'calibrated' one (measure + fit, then use\n"
      "                 the fitted ts/tw)\n"
      "program syntax:  map(pair|triple|quadruple|pi1|id) | scan(OP) |\n"
      "                 reduce(OP[,root=K]) | allreduce(OP) | bcast[(root=K)] |\n"
      "                 istart_reduce(OP[,root=K][,h=N]) | istart_allreduce(OP[,h=N]) |\n"
      "                 istart_bcast[(root=K[,h=N])] | wait[(h=N)]\n"
      "                 stages separated by ';'; OP: + * max min band bor gcd\n"
      "                 +modN *modN f+ f* mat2 first\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace colop;

  model::Machine machine{.p = 64, .m = 1024, .ts = 400, .tw = 2};
  bool exhaustive_flag = false;
  std::optional<rules::SearchStrategy> opt_strategy;
  std::size_t beam_width = 8;
  bool beam_width_set = false;
  bool search_report = false;
  std::string search_report_json;
  bool timeline = false;
  bool explain = false;
  bool drift = false;
  bool profile = false;
  bool calibrate = false;
  bool use_calibrated = false;
  bool rt_report = false;
  bool verify = false;
  bool lint = false;
  std::string verify_json;
  int repeat = 1;
  int warmup = 0;
  int serve_port = -1;  // -1 = no --serve; 0 = ephemeral
  bool live = false;    // --live: serve in-flight telemetry mid-run
  std::string calibrate_from = "simnet";
  std::string explain_json, trace_file, metrics_file, drift_json, example;
  std::string profile_json, profile_trace, calibrate_json;
  std::string rt_json, rt_trace, rt_html;
  bool record = false;
  std::string record_dir, store_dir;
  std::vector<std::string> diff_args;
  std::string diff_json, diff_html;
  bool overlap = false;      // --overlap: enable the split-phase rules
  int overlap_segments = 4;  // pipeline depth of each overlap window
  rules::OptimizerOptions options;
  rules::ExplainLog explain_log;
  std::string program_text;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--p") {
      machine.p = parse_int(arg, next());
      if (machine.p < 1) bad_value(arg, argv[i], "a positive integer");
    } else if (arg == "--m") {
      machine.m = parse_double(arg, next());
      if (machine.m < 0) bad_value(arg, argv[i], "a non-negative number");
    } else if (arg == "--ts") {
      machine.ts = parse_double(arg, next());
      if (machine.ts < 0) bad_value(arg, argv[i], "a non-negative number");
    } else if (arg == "--tw") {
      machine.tw = parse_double(arg, next());
      if (machine.tw < 0) bad_value(arg, argv[i], "a non-negative number");
    } else if (arg == "--exhaustive") {
      exhaustive_flag = true;
    } else if (arg == "--opt" || arg.rfind("--opt=", 0) == 0) {
      const std::string which = arg == "--opt" ? next() : arg.substr(6);
      const auto strategy = rules::parse_strategy(which);
      if (!strategy)
        bad_value("--opt", which.c_str(), "greedy, beam, bnb or exhaustive");
      opt_strategy = *strategy;
    } else if (arg == "--beam-width" || arg.rfind("--beam-width=", 0) == 0) {
      const std::string text =
          arg == "--beam-width" ? next() : arg.substr(13);
      const int w = parse_int("--beam-width", text.c_str());
      if (w < 1) bad_value("--beam-width", text.c_str(), "a positive integer");
      beam_width = static_cast<std::size_t>(w);
      beam_width_set = true;
    } else if (arg == "--search-report") {
      search_report = true;
    } else if (arg == "--search-report-json") {
      search_report_json = next();
    } else if (arg.rfind("--search-report-json=", 0) == 0) {
      search_report_json = arg.substr(21);
      if (search_report_json.empty())
        bad_value("--search-report-json", "", "a file name");
    } else if (arg == "--overlap") {
      overlap = true;
    } else if (arg.rfind("--overlap=", 0) == 0) {
      overlap = true;
      overlap_segments = parse_int("--overlap", arg.c_str() + 10);
      if (overlap_segments < 2)
        bad_value("--overlap", arg.c_str() + 10,
                  "a pipeline depth >= 2 (K segments per window)");
    } else if (arg == "--strict") {
      options.policy = rules::EquivalencePolicy::strict;
    } else if (arg == "--max-mem") {
      options.max_elem_words = parse_int(arg, next());
    } else if (arg == "--timeline") {
      timeline = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--explain-json") {
      explain_json = next();
      explain = true;
    } else if (arg == "--trace") {
      trace_file = next();
    } else if (arg == "--metrics") {
      metrics_file = next();
    } else if (arg == "--drift") {
      drift = true;
    } else if (arg == "--drift-json") {
      drift_json = next();
      drift = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--profile-json") {
      profile_json = next();
      profile = true;
    } else if (arg == "--profile-trace") {
      profile_trace = next();
      profile = true;
    } else if (arg == "--calibrate") {
      calibrate = true;
    } else if (arg == "--calibrate-from") {
      calibrate_from = next();
      calibrate = true;
      if (calibrate_from != "simnet" && calibrate_from != "mpsim")
        bad_value(arg, calibrate_from.c_str(), "simnet or mpsim");
    } else if (arg == "--calibrate-json") {
      calibrate_json = next();
      calibrate = true;
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--verify-json") {
      verify_json = next();
      verify = true;
    } else if (arg == "--lint") {
      lint = true;
      verify = true;
    } else if (arg == "--rt-report") {
      rt_report = true;
    } else if (arg == "--rt-json") {
      rt_json = next();
      rt_report = true;
    } else if (arg == "--rt-trace") {
      rt_trace = next();
      rt_report = true;
    } else if (arg == "--rt-html") {
      rt_html = next();
      rt_report = true;
    } else if (arg == "--repeat") {
      repeat = parse_int(arg, next());
      if (repeat < 1) bad_value(arg, argv[i], "a positive integer");
    } else if (arg == "--warmup") {
      warmup = parse_int(arg, next());
      if (warmup < 0) bad_value(arg, argv[i], "a non-negative integer");
    } else if (arg == "--record") {
      record = true;
    } else if (arg.rfind("--record=", 0) == 0) {
      record = true;
      record_dir = arg.substr(9);
      if (record_dir.empty()) bad_value("--record", "", "a directory");
    } else if (arg == "--store") {
      store_dir = next();
    } else if (arg == "--diff") {
      diff_args = {next(), next()};
    } else if (arg == "--diff-json") {
      diff_json = next();
    } else if (arg == "--diff-html") {
      diff_html = next();
    } else if (arg == "--serve") {
      serve_port = 0;
    } else if (arg.rfind("--serve=", 0) == 0) {
      serve_port = parse_int("--serve", arg.c_str() + 8);
      if (serve_port < 0 || serve_port > 65535)
        bad_value("--serve", arg.c_str() + 8, "a port in 0..65535");
    } else if (arg == "--live") {
      live = true;
    } else if (arg == "--machine") {
      const std::string which = next();
      if (which == "calibrated")
        use_calibrated = true;
      else if (which != "configured")
        bad_value(arg, which.c_str(), "configured or calibrated");
    } else if (arg == "--example") {
      example = next();
    } else if (arg == "--rules") {
      for (const auto& r : rules::all_rules())
        std::cout << r->name() << ":\n    " << r->description() << "\n";
      for (const auto& r : rules::overlap_rules())
        std::cout << r->name() << " (--overlap only):\n    "
                  << r->description() << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      usage();
      return 2;
    } else {
      program_text = arg;
    }
  }
  // Search-flag consistency (exit 2 like any other usage error: a flag
  // combination that cannot mean what the user intended must not be
  // silently reinterpreted).
  if (exhaustive_flag) {
    if (opt_strategy &&
        *opt_strategy != rules::SearchStrategy::exhaustive) {
      std::cerr << "--exhaustive conflicts with --opt="
                << rules::strategy_name(*opt_strategy) << "\n\n";
      usage();
      return 2;
    }
    opt_strategy = rules::SearchStrategy::exhaustive;
  }
  const bool searching =
      opt_strategy && *opt_strategy != rules::SearchStrategy::greedy;
  if (beam_width_set &&
      (!opt_strategy || *opt_strategy != rules::SearchStrategy::beam)) {
    std::cerr << "--beam-width is only meaningful with --opt=beam\n\n";
    usage();
    return 2;
  }
  if ((search_report || !search_report_json.empty()) && !searching) {
    std::cerr << "--search-report requires a search strategy "
                 "(--opt=beam, --opt=bnb or --opt=exhaustive)\n\n";
    usage();
    return 2;
  }
  if (live && serve_port < 0) {
    std::cerr << "--live requires --serve (it streams through the stats "
                 "server)\n\n";
    usage();
    return 2;
  }

  // --overlap works with every strategy (greedy just appends the overlap
  // rules to its catalog); the segment count rides to the thread executor
  // through the environment, read once before rank threads spawn.
  if (overlap)
    ::setenv("COLOP_OVERLAP_SEGMENTS",
             std::to_string(overlap_segments).c_str(), 1);

  // Store root: --record=DIR wins (what we write is what we read), then
  // --store, then the environment/default.
  const std::string store_root = !record_dir.empty() ? record_dir
                                 : !store_dir.empty()
                                     ? store_dir
                                     : obs::RunStore::default_root();

  if (!diff_args.empty()) {
    // Forensics diff mode: pure archive analysis, no program run, no fresh
    // trace id (the diff carries the two recorded ids).
    try {
      const obs::RunStore store(store_root);
      const obs::RunBundle a = obs::load_run_or_file(store, diff_args[0]);
      const obs::RunBundle b = obs::load_run_or_file(store, diff_args[1]);
      const obs::RunDiff d = obs::diff_runs(a, b);
      std::cout << d.render_text();
      if (!diff_json.empty()) {
        auto f = open_output(diff_json);
        d.write_json(f);
        std::cout << "\nrun diff written to " << diff_json << "\n";
      }
      if (!diff_html.empty()) {
        auto f = open_output(diff_html);
        d.write_html(f);
        std::cout << "run diff HTML report written to " << diff_html << "\n";
      }
      return 0;
    } catch (const Error& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }

  if (program_text.empty() && example.empty()) {
    usage();
    return 2;
  }

  try {
    ir::Program program;
    if (!example.empty()) {
      std::vector<double> coeffs(static_cast<std::size_t>(machine.p));
      for (std::size_t i = 0; i < coeffs.size(); ++i)
        coeffs[i] = static_cast<double>(i + 1);
      if (example == "polyeval1")
        program = apps::polyeval_1(coeffs);
      else if (example == "polyeval2")
        program = apps::polyeval_2(coeffs);
      else if (example == "polyeval3")
        program = apps::polyeval_3(coeffs);
      else if (example == "polyeval_sr2")
        program = apps::polyeval_sr2(coeffs);
      else {
        std::cerr << "unknown example: " << example << "\n";
        return 2;
      }
    } else {
      program = ir::parse_program(program_text);
    }
    if (auto err = ir::check_shapes(program)) {
      std::cerr << "shape error: " << *err << "\n";
      return 1;
    }

    // One TraceId per invocation: every artifact this run writes (Chrome
    // traces, drift/profile/rt/verify JSON, metrics, /runs) carries it.
    obs::set_trace_id(obs::mint_trace_id());
    std::cout << "program : " << program.show() << "\n";
    std::cout << "machine : p=" << machine.p << " m=" << machine.m
              << " ts=" << machine.ts << " tw=" << machine.tw << "\n";
    std::cout << "trace   : " << obs::trace_id() << "\n\n";

    if (calibrate || use_calibrated) {
      const auto timings = calibrate_from == "mpsim"
                               ? obs::measure_mpsim_timings()
                               : obs::measure_simnet_timings(machine);
      auto fit = model::fit_machine(timings);
      fit.source = calibrate_from;
      if (calibrate) {
        std::cout << fit.render_text();
        std::cout << obs::machine_drift(machine, fit).render_text() << "\n";
        if (!calibrate_json.empty()) {
          auto f = open_output(calibrate_json);
          fit.write_json(f);
          std::cout << "calibration written to " << calibrate_json << "\n\n";
        }
      }
      if (use_calibrated) {
        machine = fit.machine(machine.p, machine.m);
        std::cout << "machine : (calibrated from " << calibrate_from
                  << ") ts=" << machine.ts << " tw=" << machine.tw << "\n\n";
      }
    }

    // The telemetry hub wants the optimizer's attempt log even when the
    // user didn't ask for --explain: rule attempted/rejected counters come
    // from it.  A recorded bundle archives the hub snapshot and the explain
    // log, so --record implies both.
    const bool hub_wanted =
        serve_port >= 0 || !metrics_file.empty() || record;
    if (explain || hub_wanted) options.explain = &explain_log;
    auto rule_set = rules::all_rules();
    if (overlap)
      for (auto& r : rules::overlap_rules()) rule_set.push_back(std::move(r));
    const rules::Optimizer optimizer(machine, rule_set, options);
    std::optional<rules::SearchResult> search_res;
    bool winner_fell_back = false;
    bool winner_demoted = false;
    rules::OptimizeResult result;
    if (searching) {
      rules::SearchOptions sopts;
      sopts.strategy = *opt_strategy;
      sopts.beam_width =
          *opt_strategy == rules::SearchStrategy::beam ? beam_width : 0;
      sopts.base = options;
      const rules::SearchOptimizer searcher(machine, rule_set, sopts);
      // The soundness gate: re-discharge every ranked schedule's rewrite
      // certificates (shared steps once) and install the cheapest CERTIFIED
      // schedule as the winner before anything downstream consumes it.
      auto cert = verify::certify_search(program, searcher.search(program));
      winner_fell_back = cert.fell_back_to_source;
      winner_demoted = cert.demoted;
      search_res = std::move(cert.search);
      result = search_res->best;
    } else {
      result = optimizer.optimize(program);
    }

    if (explain) {
      if (searching) {
        std::cout << "(--explain records the greedy strategy only)\n";
      } else {
        std::cout << "rule attempts (every rule x position, per step):\n"
                  << explain_log.render_text(true) << "\n";
      }
      if (!explain_json.empty()) {
        auto f = open_output(explain_json);
        explain_log.write_json(f);
        std::cout << "explain log written to " << explain_json << "\n";
      }
    }

    std::string strategy_label = "greedy";
    if (searching) {
      switch (*opt_strategy) {
        case rules::SearchStrategy::beam:
          strategy_label =
              "beam search, width " + (search_res->beam_width == 0
                                           ? std::string("unbounded")
                                           : std::to_string(
                                                 search_res->beam_width));
          break;
        case rules::SearchStrategy::branch_bound:
          strategy_label = "branch-and-bound search";
          break;
        default:
          strategy_label = "exhaustive search";
          break;
      }
    }
    if (result.log.empty()) {
      std::cout << "no profitable rewrite on this machine.\n";
    } else {
      std::cout << "derivation (" << strategy_label << "):\n";
      for (const auto& step : result.log) {
        std::cout << "  " << step.rule << " @" << step.position;
        if (!step.note.empty()) std::cout << " {" << step.note << "}";
        std::cout << "\n    = " << step.program_after << "\n";
      }
    }
    if (searching) {
      std::cout << "schedule : cost " << result.cost_final << " (greedy "
                << search_res->greedy_cost << "), certificates ";
      if (winner_fell_back)
        std::cout << "rejected every searched schedule — kept the source "
                     "program";
      else if (winner_demoted)
        std::cout << "demoted cheaper uncertified schedule(s); winner "
                     "discharged";
      else
        std::cout << "discharged";
      std::cout << "\n";
    }
    std::cout << "\n";

    if (search_report) std::cout << search_res->render_report() << "\n";
    if (!search_report_json.empty()) {
      auto f = open_output(search_report_json);
      search_res->write_json(f);
      std::cout << "search report written to " << search_report_json << "\n\n";
    }

    int verify_exit = 0;
    std::optional<verify::VerifyResult> vres;
    if (verify) {
      verify::VerifyOptions vopts;
      vopts.p = machine.p;
      vopts.lints = lint;
      vres = verify::verify_program(program, &result, vopts);
      std::cout << vres->render_text(lint);
      if (!verify_json.empty()) {
        auto f = open_output(verify_json);
        vres->write_json(f, lint);
        f << "\n";
        std::cout << "verification report written to " << verify_json << "\n";
      }
      std::cout << "\n";
      verify_exit = vres->exit_code();
    }

    Table t("prediction", {"version", "analytic cost", "simnet time",
                           "messages", "words"});
    const auto before = exec::run_on_simnet(program, machine);
    const auto after = exec::run_on_simnet(result.program, machine);
    t.add("original", model::program_time(program, machine), before.time,
          before.messages, before.words);
    t.add("optimized", model::program_time(result.program, machine), after.time,
          after.messages, after.words);
    t.print(std::cout);
    if (before.time > 0)
      std::cout << "\npredicted speedup: " << before.time / after.time << "x\n";

    if (timeline) {
      // Timelines get unreadable beyond a screenful of processors.
      model::Machine tl = machine;
      tl.p = std::min(tl.p, 16);
      const auto tb = exec::trace_on_simnet(program, tl);
      const auto ta = exec::trace_on_simnet(result.program, tl);
      std::cout << "\nbefore (p=" << tl.p << "):\n"
                << exec::render_timeline(tb, 72) << "\nafter:\n"
                << exec::render_timeline(ta, 72, tb.makespan);
    }

    if (!trace_file.empty()) {
      // Stage spans plus the fine-grained machine ops beneath them, all in
      // simulated time.
      obs::MemorySink machine_events;
      const auto tr =
          exec::trace_on_simnet(result.program, machine, {}, &machine_events);
      auto events = exec::trace_events(tr);
      for (const auto& ev : machine_events.events()) events.push_back(ev);
      auto f = open_output(trace_file);
      obs::write_chrome_trace(events, f, "colopt");
      std::cout << "\nChrome trace (" << events.size() << " events) written to "
                << trace_file << "\n";
    }

    std::string drift_artifact;
    if (drift) {
      const auto ro = obs::drift_report(program, machine);
      const auto rr = obs::drift_report(result.program, machine);
      std::cout << "\n" << ro.render_text() << "\n" << rr.render_text();
      std::ostringstream ss;
      ss << "{\"original\":";
      ro.write_json(ss);
      ss << ",\"optimized\":";
      rr.write_json(ss);
      ss << "}\n";
      drift_artifact = ss.str();
      if (!drift_json.empty()) {
        auto f = open_output(drift_json);
        f << drift_artifact;
        std::cout << "drift report written to " << drift_json << "\n";
      }
    }

    if (profile) {
      obs::ProfileOptions popts;
      popts.provenance = rules::stage_provenance(program.size(), result.log);
      const auto prof = obs::profile_program(result.program, machine, popts);
      std::cout << "\n" << prof.render_text();
      if (!profile_json.empty()) {
        auto f = open_output(profile_json);
        prof.write_json(f);
        std::cout << "profile written to " << profile_json << "\n";
      }
      if (!profile_trace.empty()) {
        auto f = open_output(profile_trace);
        prof.write_chrome_trace(f);
        std::cout << "profile trace written to " << profile_trace << "\n";
      }
    }

    // Telemetry hub: the typed registry behind --metrics and --serve.
    // Declared before the execution block so --live can fold in-flight
    // samples into the same registry the server exports.  Destruction
    // order matters: the server (workers may read the sampler) goes down
    // first, then the sampler (its thread writes the hub), then the hub.
    obs::Registry hub;
    std::optional<obs::LiveSampler> live_sampler;
    std::optional<obs::StatsServer> server;

    std::optional<rt::RtReport> rt_rep;
    if (rt_report || serve_port >= 0) {
      // Run the optimized program for real on the thread executor and merge
      // the flight-recorder capture with the cost calculus' predictions.
      // Input: p blocks of small integers — safe for every arithmetic op in
      // the catalog (products stay in {-1, 0, 1}).
      const auto block =
          static_cast<std::size_t>(std::clamp(machine.m, 1.0, 4096.0));
      Rng rng(0x7c01);
      ir::Dist input(static_cast<std::size_t>(machine.p));
      for (auto& b : input) {
        b.resize(block);
        for (auto& v : b) v = ir::Value(rng.uniform(-1, 1));
      }

      if (live) {
        // Live mode flips the ordering: enable the bus, start the sampler
        // and the server *before* execution so scrapes and /live streams
        // observe the run in flight.
        auto& bus = obs::LiveBus::global();
        obs::LiveRunInfo info;
        info.trace_id = obs::trace_id();
        info.program = result.program.show();
        for (const auto& stage : result.program.stages())
          info.stage_labels.push_back(stage->show());
        info.ranks = static_cast<int>(machine.p);
        info.repeats = warmup + repeat;
        bus.set_enabled(true);
        bus.begin_run(std::move(info));
        live_sampler.emplace(bus, hub);
        live_sampler->start();

        obs::RunSummary run_summary;
        run_summary.trace_id = obs::trace_id();
        run_summary.program = program.show();
        run_summary.optimized = result.program.show();
        run_summary.started_at = obs::utc_timestamp();
        run_summary.state = "live";
        run_summary.rewrites = static_cast<int>(result.log.size());
        run_summary.model_cost_before = model::program_time(program, machine);
        run_summary.model_cost_after =
            model::program_time(result.program, machine);
        server.emplace(hub);
        server->add_run(run_summary);
        server->set_run_store(store_root);
        server->set_live(&*live_sampler);
        std::string err;
        if (!server->start(serve_port, &err)) {
          std::cerr << "error: " << err << "\n";
          return 1;
        }
        server->install_signal_stop();
        std::cout << "serving on http://127.0.0.1:" << server->port()
                  << " (live; GET /metrics /metrics.json /runs /live "
                     "/live.json /healthz; Ctrl-C to stop)\n"
                  << std::flush;
      }

      std::vector<double> samples_ms;
      samples_ms.reserve(static_cast<std::size_t>(repeat));
      std::optional<exec::ThreadRunResult> run;
      for (int it = 0; it < warmup + repeat; ++it) {
        if (live) obs::LiveBus::global().note_repeat(it);
        auto r = exec::run_on_threads_instrumented(result.program, input);
        if (it >= warmup) samples_ms.push_back(r.wall_seconds * 1e3);
        run = std::move(r);
      }
      if (live) obs::LiveBus::global().end_run();

      rt::RtReportOptions ropts;
      ropts.model_stage_times.reserve(result.program.size());
      for (const auto& stage : result.program.stages())
        ropts.model_stage_times.push_back(
            model::stage_cost(*stage).eval(machine));
      ropts.wall_seconds = run->wall_seconds;
      ropts.used_packed = run->used_packed;
      ropts.timing = rt::RepeatStats::of(samples_ms, warmup);
      rt_rep = rt::build_report(run->rt, ropts);
      if (server) server->finish_run(obs::trace_id(), rt_rep->wall_ms);
      const auto& rep = *rt_rep;

      if (rt_report) std::cout << "\n" << rep.render_text();
      if (!run->rt.enabled)
        std::cout << "(runtime telemetry disabled: COLOP_RT=0 or compiled "
                     "out; per-rank and per-stage sections are empty)\n";
      if (!rt_json.empty()) {
        auto f = open_output(rt_json);
        rep.write_json(f);
        std::cout << "runtime report written to " << rt_json << "\n";
      }
      if (!rt_trace.empty()) {
        auto f = open_output(rt_trace);
        rep.write_chrome_trace(f);
        std::cout << "runtime trace written to " << rt_trace << "\n";
      }
      if (!rt_html.empty()) {
        auto f = open_output(rt_html);
        rep.write_html(f);
        std::cout << "runtime HTML report written to " << rt_html << "\n";
      }
    }

    // Every subsystem that ran publishes its snapshot into the hub by name.
    if (hub_wanted) {
      hub.gauge("colop_machine_p", "Configured processor count")
          .set(static_cast<double>(machine.p));
      hub.gauge("colop_machine_m", "Configured block size, elements")
          .set(machine.m);
      hub.gauge("colop_machine_ts", "Message start-up time, op units")
          .set(machine.ts);
      hub.gauge("colop_machine_tw", "Per-word transfer time, op units")
          .set(machine.tw);
      const char* versions[] = {"original", "optimized"};
      const exec::SimRunResult* sims[] = {&before, &after};
      for (int v = 0; v < 2; ++v) {
        const obs::LabelSet label{{"version", versions[v]}};
        hub.gauge("colop_sim_time_units",
                  "Simulated execution time, op units", label)
            .set(sims[v]->time);
        hub.gauge("colop_sim_messages",
                  "Simulated point-to-point message count", label)
            .set(static_cast<double>(sims[v]->messages));
        hub.gauge("colop_sim_words", "Simulated words transferred", label)
            .set(sims[v]->words);
      }
      if (after.time > 0)
        hub.gauge("colop_predicted_speedup",
                  "Simulated original/optimized time ratio")
            .set(before.time / after.time);
      rules::publish_metrics(result, options.explain, hub);
      if (search_res) rules::publish_search_metrics(*search_res, hub);
      if (vres) verify::publish_metrics(*vres, hub);
      if (rt_rep) rt::publish_registry(*rt_rep, hub);
    }

    if (!metrics_file.empty()) {
      const auto ends_with = [&](const std::string& suffix) {
        return metrics_file.size() >= suffix.size() &&
               metrics_file.compare(metrics_file.size() - suffix.size(),
                                    suffix.size(), suffix) == 0;
      };
      auto f = open_output(metrics_file);
      if (ends_with(".csv")) {
        // Legacy scalar document, kept for spreadsheet-style consumers.
        obs::MetricsRegistry reg;
        reg.set_info("trace_id", obs::trace_id());
        reg.set("p", machine.p);
        reg.set("m", machine.m);
        reg.set("ts", machine.ts);
        reg.set("tw", machine.tw);
        reg.set("model_time_before", model::program_time(program, machine));
        reg.set("model_time_after",
                model::program_time(result.program, machine));
        reg.set("sim_time_before", before.time);
        reg.set("sim_time_after", after.time);
        reg.set("messages_before", static_cast<double>(before.messages));
        reg.set("messages_after", static_cast<double>(after.messages));
        reg.set("words_before", before.words);
        reg.set("words_after", after.words);
        reg.set("rewrites_applied", static_cast<double>(result.log.size()));
        if (after.time > 0) reg.set("speedup", before.time / after.time);
        if (rt_rep) rt::publish_metrics(*rt_rep, reg);
        reg.write_csv(f);
      } else if (ends_with(".prom")) {
        hub.write_prometheus(f);
      } else {
        hub.write_json(f);
        f << "\n";
      }
      std::cout << "metrics written to " << metrics_file << "\n";
    }

    if (record) {
      obs::RunBundle bundle;
      bundle.trace_id = obs::trace_id();
      bundle.git_sha = obs::env_git_sha();
      bundle.timestamp = obs::utc_timestamp();
      bundle.timestamp_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count());
      bundle.machine = {machine.p, machine.m, machine.ts, machine.tw};
      if (const char* dp = std::getenv("COLOP_DATA_PLANE"))
        bundle.data_plane = dp;
      for (int a = 1; a < argc; ++a) bundle.args.emplace_back(argv[a]);

      const auto kind_name = [](ir::Stage::Kind k) -> std::string {
        switch (k) {
          case ir::Stage::Kind::Map: return "map";
          case ir::Stage::Kind::MapIndexed: return "map#";
          case ir::Stage::Kind::Scan: return "scan";
          case ir::Stage::Kind::Reduce: return "reduce";
          case ir::Stage::Kind::AllReduce: return "allreduce";
          case ir::Stage::Kind::Bcast: return "bcast";
          case ir::Stage::Kind::ScanBalanced: return "scan_balanced";
          case ir::Stage::Kind::ReduceBalanced: return "reduce_balanced";
          case ir::Stage::Kind::AllReduceBalanced:
            return "allreduce_balanced";
          case ir::Stage::Kind::Iter: return "iter";
          case ir::Stage::Kind::IStartReduce: return "istart_reduce";
          case ir::Stage::Kind::IStartAllReduce: return "istart_allreduce";
          case ir::Stage::Kind::IStartBcast: return "istart_bcast";
          case ir::Stage::Kind::Wait: return "wait";
        }
        return "?";
      };
      const auto stage_records =
          [&](const ir::Program& prog,
              const std::vector<std::string>* provenance) {
            std::vector<obs::StageRecord> out;
            int idx = 0;
            for (const auto& stage : prog.stages()) {
              obs::StageRecord rec;
              rec.index = idx;
              rec.label = stage->show();
              rec.kind = kind_name(stage->kind());
              rec.local = stage->is_local();
              if (provenance != nullptr &&
                  static_cast<std::size_t>(idx) < provenance->size())
                rec.rule = (*provenance)[static_cast<std::size_t>(idx)];
              rec.model_time = model::stage_cost(*stage).eval(machine);
              out.push_back(std::move(rec));
              ++idx;
            }
            return out;
          };
      bundle.program_before = program.show();
      bundle.program_after = result.program.show();
      const auto provenance = rules::stage_provenance(program.size(), result.log);
      bundle.stages_before = stage_records(program, nullptr);
      bundle.stages_after = stage_records(result.program, &provenance);
      for (const auto& step : result.log) {
        obs::RuleRecord rec;
        rec.rule = step.rule;
        rec.position = step.position;
        rec.count = step.count;
        rec.replaced_by = step.replaced_by;
        rec.note = step.note;
        rec.cost_before = step.cost_before;
        rec.cost_after = step.cost_after;
        rec.program_after = step.program_after;
        bundle.rules.push_back(std::move(rec));
      }
      bundle.model_cost_before = model::program_time(program, machine);
      bundle.model_cost_after = model::program_time(result.program, machine);
      bundle.sim_before = {before.time, before.messages, before.words};
      bundle.sim_after = {after.time, after.messages, after.words};
      if (rt_rep) bundle.wall_ms = rt_rep->wall_ms;
      if (search_res) {
        obs::SearchRecord s;
        s.strategy = rules::strategy_name(search_res->strategy);
        s.beam_width = search_res->beam_width;
        s.nodes_expanded = search_res->stats.nodes_expanded;
        s.nodes_generated = search_res->stats.nodes_generated;
        s.pruned_bound = search_res->stats.pruned_by_bound;
        s.pruned_beam = search_res->stats.pruned_by_beam;
        s.pruned_budget = search_res->stats.pruned_by_budget;
        s.memo_hits = search_res->stats.memo_hits;
        s.memo_entries = search_res->stats.memo_entries;
        s.frontier_peak = search_res->stats.frontier_peak;
        s.depth = search_res->stats.depth_reached;
        s.greedy_cost = search_res->greedy_cost;
        s.winner_cost = search_res->best.cost_final;
        s.winner_certified =
            search_res->winner_index < search_res->ranked.size() &&
            search_res->ranked[search_res->winner_index].certified == 1;
        for (const auto& r : search_res->ranked)
          s.ranked.push_back({r.cost, r.path_text(), r.certified});
        bundle.search = std::move(s);
      }

      // Artifacts: everything this run computed, plus the explain log,
      // profile and hub snapshot --record implies.
      if (!searching) {
        std::ostringstream ss;
        explain_log.write_json(ss);
        bundle.artifacts["explain"] = ss.str();
      }
      if (search_res) {
        std::ostringstream ss;
        search_res->write_json(ss);
        bundle.artifacts["search"] = ss.str();
      }
      {
        obs::ProfileOptions popts;
        popts.provenance = provenance;
        const auto prof = obs::profile_program(result.program, machine, popts);
        std::ostringstream ss;
        prof.write_json(ss);
        bundle.artifacts["profile"] = ss.str();
      }
      {
        std::ostringstream ss;
        hub.write_json(ss);
        bundle.artifacts["metrics"] = ss.str();
      }
      if (!drift_artifact.empty()) bundle.artifacts["drift"] = drift_artifact;
      if (vres) {
        std::ostringstream ss;
        vres->write_json(ss, lint);
        ss << "\n";
        bundle.artifacts["verify"] = ss.str();
      }
      if (rt_rep) {
        std::ostringstream ss;
        rt_rep->write_json(ss);
        bundle.artifacts["rt"] = ss.str();
      }

      const obs::RunStore store(store_root);
      const std::string dir = store.save(bundle);
      std::cout << "run recorded to " << dir << "\n";
      std::string retention_warning;
      const auto policy = obs::RetentionPolicy::from_env(&retention_warning);
      if (!retention_warning.empty())
        std::cerr << "warning: " << retention_warning << "\n";
      if (!policy.unlimited()) {
        const auto evicted = store.prune(policy);
        for (const auto& id : evicted)
          std::cout << "retention: evicted run " << id << "\n";
      }
    }

    if (serve_port >= 0) {
      if (!server) {
        obs::RunSummary run_summary;
        run_summary.trace_id = obs::trace_id();
        run_summary.program = program.show();
        run_summary.optimized = result.program.show();
        run_summary.started_at = obs::utc_timestamp();
        run_summary.rewrites = static_cast<int>(result.log.size());
        run_summary.model_cost_before = model::program_time(program, machine);
        run_summary.model_cost_after =
            model::program_time(result.program, machine);
        if (rt_rep) run_summary.wall_ms = rt_rep->wall_ms;

        server.emplace(hub);
        server->add_run(run_summary);
        server->set_run_store(store_root);
        std::string err;
        if (!server->start(serve_port, &err)) {
          std::cerr << "error: " << err << "\n";
          return 1;
        }
        server->install_signal_stop();
        std::cout << "serving on http://127.0.0.1:" << server->port()
                  << " (GET /metrics /metrics.json /runs /runs/<trace_id> "
                     "/healthz; Ctrl-C to stop)\n"
                  << std::flush;
      }
      server->wait();
    }
    return verify_exit;  // 0, or 3 when --verify found the run unsound
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
