// bench_diff — benchmark regression gate.
//
// Compare the BENCH_*.json documents of a current run against committed
// baselines and exit nonzero when any cost-like metric regressed beyond
// the threshold.  All table/figure benchmarks are simnet-deterministic,
// so the committed baselines are exact; the threshold exists for metrics
// that may legitimately move a little as the model evolves.
//
// Usage:
//   bench_diff --baseline-dir bench/baselines --current-dir build/bench
//              [--threshold 0.15] [--json report.json]
//
// Exit status: 0 = no regression, 1 = regression beyond threshold,
// 2 = usage / IO error.

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "colop/obs/bench_compare.h"
#include "colop/obs/json.h"
#include "colop/support/error.h"

namespace {

namespace fs = std::filesystem;

void usage() {
  std::cerr <<
      "usage: bench_diff --baseline-dir DIR --current-dir DIR\n"
      "                  [--threshold X] [--json FILE]\n"
      "  --baseline-dir DIR  committed BENCH_*.json baselines\n"
      "  --current-dir DIR   BENCH_*.json files of the current run\n"
      "  --threshold X       relative regression threshold (default 0.15)\n"
      "  --json FILE         write the combined report as JSON\n";
}

std::string slurp(const fs::path& path) {
  std::ifstream f(path);
  if (!f) throw colop::Error("cannot read " + path.string());
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

std::vector<fs::path> bench_files(const fs::path& dir) {
  std::vector<fs::path> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && entry.path().extension() == ".json")
      out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_dir, current_dir, json_out;
  double threshold = 0.15;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--baseline-dir") {
      baseline_dir = next();
    } else if (arg == "--current-dir") {
      current_dir = next();
    } else if (arg == "--threshold") {
      const char* text = next();
      char* end = nullptr;
      errno = 0;
      threshold = std::strtod(text, &end);
      if (end == text || *end != '\0' || errno == ERANGE || threshold < 0) {
        std::cerr << "bad value for --threshold: '" << text << "'\n\n";
        usage();
        return 2;
      }
    } else if (arg == "--json") {
      json_out = next();
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n\n";
      usage();
      return 2;
    }
  }
  if (baseline_dir.empty() || current_dir.empty()) {
    usage();
    return 2;
  }

  try {
    if (!fs::is_directory(baseline_dir))
      throw colop::Error("baseline dir not found: " + baseline_dir);
    if (!fs::is_directory(current_dir))
      throw colop::Error("current dir not found: " + current_dir);

    std::vector<colop::obs::BenchDiffReport> reports;
    bool regressed = false;
    int compared = 0;

    for (const auto& base_path : bench_files(baseline_dir)) {
      const fs::path cur_path =
          fs::path(current_dir) / base_path.filename();
      if (!fs::exists(cur_path)) {
        std::cout << base_path.filename().string()
                  << ": missing from current run — FAIL\n";
        regressed = true;
        continue;
      }
      auto report = colop::obs::compare_bench_json(
          base_path.filename().string(), slurp(base_path), slurp(cur_path),
          threshold);
      std::cout << report.render_text() << "\n";
      if (!report.skipped) ++compared;
      regressed = regressed || report.regressed();
      reports.push_back(std::move(report));
    }
    for (const auto& cur_path : bench_files(current_dir))
      if (!fs::exists(fs::path(baseline_dir) / cur_path.filename()))
        std::cout << "note: " << cur_path.filename().string()
                  << " has no baseline (new benchmark?)\n";

    if (compared == 0) {
      std::cerr << "no comparable BENCH_*.json pairs found\n";
      return 2;
    }

    if (!json_out.empty()) {
      std::ofstream f(json_out);
      if (!f) throw colop::Error("cannot open " + json_out + " for writing");
      f << "{\"threshold\":" << colop::obs::json::number(threshold)
        << ",\"regressed\":" << (regressed ? "true" : "false")
        << ",\"benchmarks\":[";
      bool first = true;
      for (const auto& r : reports) {
        if (!first) f << ",";
        first = false;
        r.write_json(f);
      }
      f << "]}\n";
      std::cout << "report written to " << json_out << "\n";
    }

    std::cout << (regressed ? "bench_diff: REGRESSION detected"
                            : "bench_diff: all benchmarks within threshold")
              << "\n";
    return regressed ? 1 : 0;
  } catch (const colop::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
